"""GraphSearch: CompOpt strategy that mutates graph shapes, and training.

The flat search spaces in :mod:`repro.core.search` enumerate (algorithm,
level, block size) tuples. Graphs add a combinatorial axis — node kinds,
parameters, and topology — so exhaustive enumeration is out; this module
contributes the evolutionary operators the paper anticipates ("random
sampling ... or genetic algorithm", Section V-A) specialized to
transform DAGs:

- **leaf choice**: swap a leaf's (codec, level);
- **parameter moves**: nudge a transform's width/delimiter/lane count;
- **topology moves**: wrap a node in a value transform, unwrap one,
  collapse a subtree to a leaf, or re-split a leaf with a splitter.

Candidates are registered in the process-local graph registry under
fingerprint-derived names and evaluated through the ordinary CompOpt
``evaluate`` callback as ``CompressionConfig("graph:cand-<fp>", 1)`` —
the strategy plugs into :class:`repro.core.optimizer.CompOpt` unchanged.
Everything is driven by one seeded ``random.Random`` and iterates only
insertion-ordered structures, so a (seed, samples) pair always produces
the same winner, byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CompressionConfig, config_grid
from repro.core.costmodel import CostModel, CostParameters
from repro.core.engine import CompEngine
from repro.core.optimizer import CompOpt, OptimizationResult, RankedConfig
from repro.core.search import SearchStrategy
from repro.graphs.model import (
    GraphSpecError,
    MAX_LANES,
    Spec,
    VALUE_WIDTHS,
    children_of,
    iter_paths,
    node_at,
    replace_at,
    spec_fingerprint,
    spec_label,
    validate_spec,
)
from repro.graphs.registry import register_graph
from repro.perfmodel import DEFAULT_MACHINE, MachineModel

#: leaf menu explored by mutations: codec → candidate levels
LEAF_MENU: Dict[str, Tuple[int, ...]] = {
    "zstd": (1, 3, 6, 9, 12),
    "zlib": (6, 9),
    "lz4": (1, 9),
}

#: delimiters worth trying on datacenter payloads: | , " \n \t space : NUL
DELIM_MENU = (124, 44, 34, 10, 9, 32, 58, 0)

#: prefix for search-candidate registry names
CANDIDATE_PREFIX = "cand"


def candidate_name(spec: Spec) -> str:
    return f"{CANDIDATE_PREFIX}-{spec_fingerprint(spec)}"


def default_flat_candidates() -> List[CompressionConfig]:
    """The flat (codec, level) grid graph candidates must beat."""
    configs: List[CompressionConfig] = []
    for codec, levels in sorted(LEAF_MENU.items()):
        configs.extend(config_grid([codec], levels))
    return configs


class GraphSearch(SearchStrategy):
    """Evolutionary search over graph specs, seeded with shape templates.

    ``run`` first evaluates the flat candidate grid it is handed (the
    baseline the graphs must beat), then evolves the seed specs for
    ``generations`` rounds of mutate-and-evaluate, keeping the
    cheapest-by-total-cost survivors as parents.
    """

    def __init__(
        self,
        seeds: Sequence[Spec],
        generations: int = 3,
        population: int = 4,
        seed: int = 0,
    ) -> None:
        if not seeds:
            raise ValueError("GraphSearch needs at least one seed spec")
        for spec in seeds:
            validate_spec(spec)
        self.seeds = [dict(s) for s in seeds]
        self.generations = generations
        self.population = population
        self.seed = seed
        #: registry name → spec for every candidate evaluated, in order
        self.evaluated_specs: Dict[str, Spec] = {}

    # -- mutation operators --------------------------------------------------

    def _mutate(self, rng: random.Random, spec: Spec) -> Optional[Spec]:
        """One mutated copy of ``spec``, or None if the move is invalid."""
        operators: List[Callable[[random.Random, Spec], Optional[Spec]]] = [
            self._mutate_leaf,
            self._mutate_wrap,
            self._mutate_unwrap,
            self._mutate_param,
            self._mutate_collapse,
        ]
        op = rng.choice(operators)
        mutated = op(rng, spec)
        if mutated is None:
            return None
        try:
            validate_spec(mutated)
        except GraphSpecError:
            return None
        return mutated

    @staticmethod
    def _paths(spec: Spec, want: Callable[[Spec], bool]) -> List[tuple]:
        return [path for path, node in iter_paths(spec) if want(node)]

    def _mutate_leaf(self, rng: random.Random, spec: Spec) -> Optional[Spec]:
        """Swap one leaf's (codec, level) within the menu."""
        paths = self._paths(spec, lambda n: n.get("kind") == "leaf")
        if not paths:
            return None
        path = rng.choice(paths)
        codec = rng.choice(sorted(LEAF_MENU))
        level = rng.choice(LEAF_MENU[codec])
        return replace_at(
            spec, path, {"kind": "leaf", "codec": codec, "level": level}
        )

    def _mutate_wrap(self, rng: random.Random, spec: Spec) -> Optional[Spec]:
        """Insert a single-output value transform above a node."""
        paths = [path for path, __ in iter_paths(spec)]
        path = rng.choice(paths)
        kind = rng.choice(("transpose", "delta", "zigzag", "varint"))
        if kind == "transpose":
            width = rng.choice((2, 4, 8, 16))
        else:
            width = rng.choice(VALUE_WIDTHS)
        target = node_at(spec, path)
        return replace_at(
            spec, path, {"kind": kind, "width": width, "child": target}
        )

    def _mutate_unwrap(self, rng: random.Random, spec: Spec) -> Optional[Spec]:
        """Remove one single-child transform, splicing its child up."""
        paths = self._paths(spec, lambda n: "child" in n)
        if not paths:
            return None
        path = rng.choice(paths)
        return replace_at(spec, path, node_at(spec, path)["child"])

    def _mutate_collapse(self, rng: random.Random, spec: Spec) -> Optional[Spec]:
        """Collapse a multi-child subtree to a single flat leaf."""
        paths = self._paths(spec, lambda n: "children" in n)
        if not paths:
            return None
        path = rng.choice(paths)
        codec = rng.choice(sorted(LEAF_MENU))
        return replace_at(
            spec,
            path,
            {"kind": "leaf", "codec": codec, "level": LEAF_MENU[codec][-1]},
        )

    def _mutate_param(self, rng: random.Random, spec: Spec) -> Optional[Spec]:
        """Nudge one transform parameter in place."""
        paths = self._paths(
            spec, lambda n: n.get("kind") not in ("leaf", "store")
        )
        if not paths:
            return None
        path = rng.choice(paths)
        node = dict(node_at(spec, path))
        kind = node["kind"]
        if kind == "tokenize":
            choice = rng.choice(("delim", "lanes", "reset"))
            if choice == "delim":
                node["delim"] = rng.choice(DELIM_MENU)
            elif choice == "reset":
                if "reset" in node and rng.random() < 0.5:
                    node.pop("reset")
                else:
                    node["reset"] = rng.choice(DELIM_MENU)
            else:
                lanes = int(node["lanes"]) + rng.choice((-1, 1))
                if not 1 <= lanes <= MAX_LANES:
                    return None
                kids = children_of(node)
                lengths, lane_kids = kids[0], kids[1:]
                if lanes > len(lane_kids):
                    lane_kids = lane_kids + [dict(lane_kids[-1])]
                else:
                    lane_kids = lane_kids[:lanes]
                node["lanes"] = lanes
                node["children"] = [lengths] + lane_kids
        elif kind in ("transpose", "delta", "zigzag", "varint"):
            menu = (2, 4, 8, 16) if kind == "transpose" else VALUE_WIDTHS
            node["width"] = rng.choice(menu)
        elif kind == "floatsplit":
            node["hi"] = rng.choice(tuple(range(1, int(node["width"]))))
        elif kind == "headsplit":
            node["marker"] = rng.choice(DELIM_MENU)
        elif kind == "slice":
            sizes = [int(s) for s in node["sizes"]]
            index = rng.randrange(len(sizes))
            step = rng.choice((-64, -8, 8, 64))
            sizes[index] = max(0, sizes[index] + step)
            node["sizes"] = sizes
        return replace_at(spec, path, node)

    # -- the strategy --------------------------------------------------------

    def _evaluate_spec(
        self,
        spec: Spec,
        evaluate: Callable[[CompressionConfig], RankedConfig],
        seen: Dict[str, RankedConfig],
    ) -> Optional[RankedConfig]:
        name = candidate_name(spec)
        if name in seen:
            return None
        register_graph(name, spec)
        self.evaluated_specs[name] = spec
        ranked = evaluate(CompressionConfig(f"graph:{name}", 1))
        seen[name] = ranked
        return ranked

    def run(
        self,
        candidates: Sequence[CompressionConfig],
        evaluate: Callable[[CompressionConfig], RankedConfig],
    ) -> List[RankedConfig]:
        rng = random.Random(self.seed)
        ranked: List[RankedConfig] = [evaluate(c) for c in candidates]
        seen: Dict[str, RankedConfig] = {}
        for spec in self.seeds:
            self._evaluate_spec(spec, evaluate, seen)
        for __ in range(self.generations):
            survivors = sorted(seen.items(), key=lambda kv: kv[1].total_cost)
            parents = [
                self.evaluated_specs[name]
                for name, __r in survivors[: self.population]
            ]
            for parent in parents:
                mutated = self._mutate(rng, parent)
                if mutated is not None:
                    self._evaluate_spec(mutated, evaluate, seen)
        ranked.extend(seen.values())
        return ranked


# -- training -----------------------------------------------------------------


#: shape templates the per-category training starts from; mirrors what a
#: format engineer would sketch after one look at the payload
SEED_SPECS: Dict[str, List[Spec]] = {
    "record": [
        {
            "kind": "tokenize",
            "delim": 124,
            "lanes": 6,
            "reset": 10,
            "children": [{"kind": "leaf", "codec": "zlib", "level": 9}] * 7,
        },
        {
            "kind": "tokenize",
            "delim": 124,
            "lanes": 4,
            "reset": 10,
            "children": [{"kind": "leaf", "codec": "zstd", "level": 6}] * 5,
        },
    ],
    "text": [
        {
            "kind": "tokenize",
            "delim": 34,
            "lanes": 8,
            "reset": 10,
            "children": [{"kind": "leaf", "codec": "zlib", "level": 9}] * 9,
        },
        {
            "kind": "tokenize",
            "delim": 44,
            "lanes": 7,
            "reset": 10,
            "children": [{"kind": "leaf", "codec": "zstd", "level": 9}] * 8,
        },
    ],
    "float": [
        {
            "kind": "headsplit",
            "marker": 0,
            "children": [
                {"kind": "leaf", "codec": "zstd", "level": 3},
                {
                    "kind": "slice",
                    "sizes": [9828],
                    "children": [
                        {"kind": "leaf", "codec": "zlib", "level": 9},
                        {
                            "kind": "varint",
                            "width": 8,
                            "child": {"kind": "leaf", "codec": "zlib", "level": 9},
                        },
                    ],
                },
            ],
        },
        {
            "kind": "transpose",
            "width": 8,
            "child": {"kind": "leaf", "codec": "zstd", "level": 9},
        },
    ],
}


@dataclass(frozen=True)
class TrainResult:
    """Outcome of one per-category training run."""

    category: str
    #: winning spec (lowest total cost among graph candidates)
    spec: Spec
    #: its registry candidate name (``cand-<fingerprint>``)
    name: str
    ranked_graph: RankedConfig
    #: best flat candidate from the same run, for the comparison
    ranked_flat: RankedConfig
    result: OptimizationResult

    @property
    def beats_flat(self) -> bool:
        return (
            self.ranked_graph.metrics.ratio > self.ranked_flat.metrics.ratio
        )

    def describe(self) -> str:
        g, f = self.ranked_graph.metrics, self.ranked_flat.metrics
        return (
            f"{self.category}: {spec_label(self.spec)} "
            f"ratio={g.ratio:.3f} vs flat "
            f"{self.ranked_flat.config.label()} ratio={f.ratio:.3f}"
        )


def default_cost_model() -> CostModel:
    """Flat unit-price cost model used when the caller has no service."""
    return CostModel(
        CostParameters(
            alpha_compute=1.0, alpha_storage=1e-7, alpha_network=1e-6
        )
    )


def train_graph(
    category: str,
    samples: Sequence[bytes],
    generations: int = 3,
    population: int = 4,
    seed: int = 0,
    machine: MachineModel = DEFAULT_MACHINE,
    cost_model: Optional[CostModel] = None,
) -> TrainResult:
    """Train one category's graph against its samples.

    Deterministic per ``(category, samples, generations, population,
    seed)``; the returned spec is what ``repro graph train`` prints and
    what gets pinned into :mod:`repro.graphs.trained`.
    """
    if category not in SEED_SPECS:
        raise ValueError(
            f"unknown category {category!r}; have {sorted(SEED_SPECS)}"
        )
    engine = CompEngine(samples, machine=machine)
    strategy = GraphSearch(
        SEED_SPECS[category],
        generations=generations,
        population=population,
        seed=seed,
    )
    optimizer = CompOpt(
        engine, cost_model or default_cost_model(), strategy=strategy
    )
    result = optimizer.optimize(default_flat_candidates())
    graph_ranked = [
        r for r in result.ranked if r.config.algorithm.startswith("graph:")
    ]
    flat_ranked = [
        r
        for r in result.ranked
        if not r.config.algorithm.startswith("graph:")
    ]
    best_graph = min(graph_ranked, key=lambda r: r.total_cost)
    best_flat = min(flat_ranked, key=lambda r: r.total_cost)
    name = best_graph.config.algorithm.split(":", 1)[1]
    return TrainResult(
        category=category,
        spec=strategy.evaluated_specs[name],
        name=name,
        ranked_graph=best_graph,
        ranked_flat=best_flat,
        result=result,
    )
