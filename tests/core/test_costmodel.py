"""Cost model tests: equations (1)-(4) behaviour."""

import pytest

from repro.core import CostModel, CostParameters
from repro.core.metrics import CompressionMetrics


def _metrics(ratio=4.0, comp_speed=400e6, decomp_speed=1200e6, size=1 << 20):
    return CompressionMetrics(
        ratio=ratio,
        compression_speed=comp_speed,
        decompression_speed=decomp_speed,
        input_bytes=size,
        compressed_bytes=int(size / ratio),
        block_count=1,
        decode_seconds_per_block=size / decomp_speed,
    )


def _params(**overrides):
    defaults = dict(
        alpha_compute=1e-5, alpha_storage=1e-12, alpha_network=1e-11, beta=1.0,
        retention_days=30.0,
    )
    defaults.update(overrides)
    return CostParameters(**defaults)


class TestEquations:
    def test_compute_cost_inverse_in_speed(self):
        """Equation (1): cost ~ Size / CompSpeed."""
        model = CostModel(_params())
        slow = model.evaluate(_metrics(comp_speed=100e6)).compute
        fast = model.evaluate(_metrics(comp_speed=400e6)).compute
        assert slow == pytest.approx(4 * fast)

    def test_storage_cost_inverse_in_ratio(self):
        """Equation (2): cost ~ Size / CompRatio."""
        model = CostModel(_params())
        low = model.evaluate(_metrics(ratio=2.0)).storage
        high = model.evaluate(_metrics(ratio=8.0)).storage
        assert low == pytest.approx(4 * high)

    def test_storage_cost_scales_with_retention(self):
        short = CostModel(_params(retention_days=1.0)).evaluate(_metrics())
        long = CostModel(_params(retention_days=365.0)).evaluate(_metrics())
        assert long.storage == pytest.approx(365 * short.storage)

    def test_network_cost_inverse_in_ratio(self):
        """Equation (3)."""
        model = CostModel(_params())
        low = model.evaluate(_metrics(ratio=2.0)).network
        high = model.evaluate(_metrics(ratio=4.0)).network
        assert low == pytest.approx(2 * high)

    def test_beta_extrapolates_sample_to_service(self):
        """Sampling rate beta scales every term by 1/beta."""
        full = CostModel(_params(beta=1.0)).evaluate(_metrics())
        sampled = CostModel(_params(beta=1e-3)).evaluate(_metrics())
        assert sampled.total == pytest.approx(1000 * full.total)

    def test_total_is_sum(self):
        breakdown = CostModel(_params()).evaluate(_metrics())
        assert breakdown.total == pytest.approx(
            breakdown.compute + breakdown.storage + breakdown.network
        )

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            CostModel(_params(beta=0.0))

    def test_reads_per_write_extension(self):
        """Extension: read-heavy services can charge decompression compute."""
        write_only = CostModel(_params(reads_per_write=0.0)).evaluate(_metrics())
        read_heavy = CostModel(_params(reads_per_write=10.0)).evaluate(_metrics())
        assert read_heavy.compute > write_only.compute


class TestFromPriceBook:
    def test_weights_zero_out_terms(self):
        params = CostParameters.from_price_book(storage_weight=0.0)
        model = CostModel(params)
        assert model.evaluate(_metrics()).storage == 0.0

    def test_network_weight_zero(self):
        params = CostParameters.from_price_book(network_weight=0.0)
        assert CostModel(params).evaluate(_metrics()).network == 0.0

    def test_flash_storage_costs_more(self):
        warm = CostParameters.from_price_book(storage_kind="warm")
        flash = CostParameters.from_price_book(storage_kind="flash")
        warm_cost = CostModel(warm).evaluate(_metrics()).storage
        flash_cost = CostModel(flash).evaluate(_metrics()).storage
        assert flash_cost > warm_cost


class TestDecompressSecondsSemantics:
    """Regression: decompress_seconds is output-volume over output-rate.

    ``decompression_speed`` is bytes of *output* produced per second, and
    decompression reproduces the original sample set, so the time must be
    ``input_bytes / decompression_speed`` — never ``compressed_bytes``
    (the consumed volume) over that rate.
    """

    def test_uses_output_bytes_not_compressed_bytes(self):
        metrics = _metrics(ratio=8.0, decomp_speed=1000e6, size=1 << 20)
        expected = (1 << 20) / 1000e6
        assert metrics.decompress_seconds == pytest.approx(expected)
        wrong = metrics.compressed_bytes / metrics.decompression_speed
        assert metrics.decompress_seconds != pytest.approx(wrong)

    def test_round_trips_with_engine_derivation(self):
        """CompEngine derives speed = input_bytes / seconds; inverting it
        through the property must return the same seconds."""
        seconds = 0.125
        size = 1 << 20
        metrics = _metrics(decomp_speed=size / seconds, size=size)
        assert metrics.decompress_seconds == pytest.approx(seconds)

    def test_zero_speed_guard(self):
        metrics = CompressionMetrics(
            ratio=4.0,
            compression_speed=400e6,
            decompression_speed=0.0,
            input_bytes=1 << 20,
            compressed_bytes=1 << 18,
            block_count=1,
            decode_seconds_per_block=0.0,
        )
        assert metrics.decompress_seconds == 0.0
