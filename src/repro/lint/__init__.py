"""``repro.lint``: the AST-based determinism & contract sanitizer.

Every headline property of this repo -- byte-identical scorecards per
seed across runs and ``--jobs``, lossless telemetry folds, codec
corruption boundaries, zero-cost-when-disabled instrumentation -- is an
invariant written down in the docs but, until this subsystem, enforced
only by convention. ``repro.lint`` turns those conventions into named,
testable rules over the Python AST and gates the whole tree in CI.

Layers:

- :mod:`repro.lint.rules` -- the rule registry (families D/E/O; run
  ``repro lint --list-rules`` for the catalog);
- :mod:`repro.lint.engine` -- one parse per file, parent maps, rule
  dispatch, deterministic ordering;
- :mod:`repro.lint.suppress` -- ``# repro: lint-ok[RULE] -- why``
  inline waivers with required justification text;
- :mod:`repro.lint.baseline` -- the committed grandfather list and its
  one-way ratchet (``--fail-on new``);
- :mod:`repro.lint.cli` -- the ``repro lint`` command.

See docs/lint.md for the rule catalog and workflow.
"""

from repro.lint.baseline import (
    Baseline,
    load_baseline,
    save_baseline,
    split_by_baseline,
    stale_entries,
)
from repro.lint.engine import FileContext, LintReport, discover_files, lint_paths, lint_source
from repro.lint.finding import ERROR, WARNING, Finding, assign_occurrences, fingerprint
from repro.lint.rules import Rule, all_rules, get_rules
from repro.lint.suppress import Suppression, parse_suppressions

__all__ = [
    "Baseline",
    "ERROR",
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "Suppression",
    "WARNING",
    "all_rules",
    "assign_occurrences",
    "discover_files",
    "fingerprint",
    "get_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_suppressions",
    "save_baseline",
    "split_by_baseline",
    "stale_entries",
]
