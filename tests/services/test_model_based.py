"""Model-based tests: substrates vs. trivial reference models.

Hypothesis drives random operation sequences against the LSM store, the
cache, and the block cache, comparing every observable result with a plain
dict/OrderedDict model. These catch interaction bugs (flush/compaction
boundaries, eviction order, overwrite accounting) that example-based tests
miss.
"""

from collections import OrderedDict

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.services import CacheServer, CacheClient, KVStore
from repro.services.kvstore import BlockCache

_keys = st.binary(min_size=1, max_size=12)
_values = st.binary(max_size=200)


class KVStoreModel(RuleBasedStateMachine):
    """KVStore vs dict, with random flushes forcing SST/compaction paths."""

    @initialize()
    def setup(self):
        self.store = KVStore(memtable_bytes=1 << 11, level0_table_limit=2,
                             block_size=512)
        self.model = {}

    @rule(key=_keys, value=_values)
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=_keys)
    def delete(self, key):
        self.store.delete(key)
        self.model.pop(key, None)

    @rule()
    def flush(self):
        self.store.flush()

    @rule(key=_keys)
    def get_matches_model(self, key):
        assert self.store.get(key) == self.model.get(key)

    @invariant()
    def range_scan_matches_model(self):
        got = dict(self.store.scan_range(b"\x00", b"\xff" * 13))
        assert got == self.model


class CacheModel(RuleBasedStateMachine):
    """Unbounded cache vs dict: every stored item must round-trip."""

    @initialize()
    def setup(self):
        self.server = CacheServer(level=1, min_compress_size=16)
        self.client = CacheClient(self.server)
        self.model = {}

    @rule(key=_keys, value=_values)
    def set_item(self, key, value):
        self.server.set(key, "t", value)
        self.model[key] = value

    @rule(key=_keys)
    def get_matches_model(self, key):
        assert self.client.get(key) == self.model.get(key)

    @invariant()
    def resident_bytes_consistent(self):
        assert len(self.server) == len(self.model)


class BlockCacheModel(RuleBasedStateMachine):
    """BlockCache vs a reference OrderedDict LRU with the same capacity."""

    CAPACITY = 400

    @initialize()
    def setup(self):
        self.cache = BlockCache(self.CAPACITY)
        self.model = OrderedDict()
        self.used = 0

    def _model_put(self, key, block):
        if len(block) > self.CAPACITY:
            return
        if key in self.model:
            self.used -= len(self.model.pop(key))
        self.model[key] = block
        self.used += len(block)
        while self.used > self.CAPACITY:
            __, evicted = self.model.popitem(last=False)
            self.used -= len(evicted)

    @rule(key=st.integers(0, 15), size=st.integers(0, 120))
    def put(self, key, size):
        block = bytes([key]) * size
        self.cache.put((0, key), block)
        self._model_put((0, key), block)

    @rule(key=st.integers(0, 15))
    def get(self, key):
        got = self.cache.get((0, key))
        expected = self.model.get((0, key))
        if expected is not None:
            self.model.move_to_end((0, key))
        assert got == expected

    @invariant()
    def bytes_and_membership_match(self):
        assert self.cache.used_bytes == self.used
        assert len(self.cache) == len(self.model)


TestKVStoreModel = pytest.mark.filterwarnings("ignore")(
    settings(max_examples=12, stateful_step_count=25, deadline=None)(
        KVStoreModel
    ).TestCase
)
TestCacheModel = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)(CacheModel).TestCase
TestBlockCacheModel = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)(BlockCacheModel).TestCase
