"""Fig. 5: distribution of compression block sizes across services.

Paper shape: block sizes span orders of magnitude -- sub-KB cache items,
KB-scale web payloads, 16-64KB SST blocks, 256KB warehouse blocks.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table, summarize_sizes
from repro.fleet import DEFAULT_FLEET, SamplingProfiler


@pytest.fixture(scope="module")
def profiler():
    return SamplingProfiler(samples_per_day=100_000, seed=34)


def test_fig05_block_sizes(benchmark, profiler, figure_output):
    rows = []
    medians = {}
    for profile in DEFAULT_FLEET:
        if profile.compression_share == 0:
            continue
        sizes = profiler.block_size_samples(profile, count=2000).tolist()
        summary = summarize_sizes(sizes)
        medians[profile.name] = summary["p50"]
        rows.append(
            [
                profile.name,
                profile.category,
                f"{summary['p25']:.0f}",
                f"{summary['p50']:.0f}",
                f"{summary['p75']:.0f}",
                f"{summary['p99']:.0f}",
            ]
        )
    rows.sort(key=lambda r: float(r[3]))
    figure_output(
        "fig05_block_sizes",
        format_table(
            ["service", "category", "p25 B", "p50 B", "p75 B", "p99 B"],
            rows,
            title="Fig. 5: block size distribution across services",
        ),
    )
    assert max(medians.values()) / min(medians.values()) > 100

    profile = DEFAULT_FLEET[0]
    benchmark(lambda: profiler.block_size_samples(profile, count=500))
