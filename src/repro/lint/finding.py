"""The lint data model: findings, severities, and stable fingerprints.

A finding is one rule violation at one source location. Findings are the
unit everything else operates on -- suppressions cancel them, the
baseline grandfathers them, the CLI sorts and prints them -- so the
model pins down the two properties the rest of the subsystem depends
on:

- **deterministic ordering**: findings sort by (path, line, column,
  rule), so two runs over the same tree produce byte-identical reports
  (CI diffs them, the same way it diffs chaos scorecards);
- **drift-stable identity**: the fingerprint hashes the rule, the path,
  and the *text* of the offending line (plus an occurrence index for
  duplicates), never the line number. Inserting code above a
  grandfathered finding must not make it "new" -- otherwise the baseline
  ratchet would fire on unrelated edits.

Fingerprints use blake2b, the same keyed-nowhere stable hash the cluster
ring uses (:func:`repro.cluster.ring.stable_hash`), because the builtin
``hash()`` is salted per process -- the exact hazard rule D002 exists to
catch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: finding severities, in gate order. ``error`` findings fail the CI
#: gate; ``warning`` findings are reported but never fail a run.
ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)


def fingerprint(rule: str, path: str, line_text: str, occurrence: int) -> str:
    """Stable identity for one finding, independent of line numbers.

    ``occurrence`` disambiguates identical lines in the same file (the
    n-th ``time.time()`` on a textually identical line keeps a distinct
    identity even if the first is fixed).
    """
    payload = f"{rule}|{path}|{line_text.strip()}|{occurrence}"
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: source text of the offending line (fingerprint input; shown in reports)
    line_text: str = ""
    #: n-th finding with the same (rule, path, line_text); set by the engine
    occurrence: int = 0

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.rule, self.path, self.line_text, self.occurrence)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        """Plain-data form for the JSONL report and the baseline file."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text.strip(),
            "fingerprint": self.fingerprint,
        }


def assign_occurrences(findings: List[Finding]) -> List[Finding]:
    """Number duplicate (rule, path, line text) findings in source order.

    Returns the findings sorted by location with ``occurrence`` set;
    fingerprints are only meaningful after this pass.
    """
    ordered = sorted(findings, key=Finding.sort_key)
    seen: Dict[Tuple[str, str, str], int] = {}
    for item in ordered:
        key = (item.rule, item.path, item.line_text.strip())
        item.occurrence = seen.get(key, 0)
        seen[key] = item.occurrence + 1
    return ordered
