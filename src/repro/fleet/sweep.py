"""Measured fleet sweep: per-(service, codec, level) compression cells.

The sampling profiler attributes *cycles*; this module measures *work*: for
every compression-using service in the registry it builds one measurement
cell per (codec, level) in the service's mix, compresses a deterministic
category-representative payload, and reports ratio plus modeled speeds.
Cells are independent, so the grid fans out over
:class:`repro.parallel.ParallelSweepRunner` -- ``repro fleet-report
--measure --jobs N`` cuts the measured section's wall-clock by roughly the
worker count while producing byte-identical tables at any job count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.codecs import get_codec
from repro.fleet.profiles import DEFAULT_FLEET, ServiceProfile
from repro.parallel.sweep import ParallelSweepRunner

#: codec registry names for the profile algorithm mix keys
_ALGORITHM_CODECS = {"zstd": "zstd", "lz4": "lz4", "zlib": "zlib"}

#: default payload size per cell; small enough that a full-fleet sweep
#: stays interactive on the pure-Python codecs
DEFAULT_CELL_BYTES = 4096


@dataclass(frozen=True)
class MeasurementCell:
    """One (service, codec, level) grid point of the measured sweep."""

    service: str
    category: str
    codec: str
    level: int
    payload_bytes: int
    seed: int


@dataclass(frozen=True)
class CellMeasurement:
    """What one cell reports back from the pool."""

    ratio: float
    compress_mbps: float
    decompress_mbps: float
    raw_bytes: int
    compressed_bytes: int


def _cell_payload(cell: MeasurementCell) -> bytes:
    """Deterministic category-representative payload for one cell."""
    from repro.corpus import (
        CACHE1_TYPES,
        generate_cache_items,
        generate_logs,
        generate_records,
        generate_table,
    )

    seed = cell.seed
    if cell.category == "Cache":
        items = generate_cache_items(CACHE1_TYPES, count=32, seed=seed)
        blob = b"".join(data for __, data in items)
    elif cell.category == "Data Warehouse":
        from repro.services.warehouse.orc import encode_column

        table = generate_table(rows=256, seed=seed)
        blob = b"".join(encode_column(values)[1] for values in table.values())
    elif cell.category in ("Web", "Feed"):
        blob = generate_records(cell.payload_bytes, seed=seed)
    else:  # Ads, Key-Value Store, and anything new
        blob = generate_logs(cell.payload_bytes, seed=seed)
    while len(blob) < cell.payload_bytes:
        blob = blob + blob
    return blob[: cell.payload_bytes]


def measure_cell(cell: MeasurementCell) -> CellMeasurement:
    """Compress/decompress one cell's payload; module-level for the pool."""
    from repro.perfmodel import DEFAULT_MACHINE

    codec = get_codec(cell.codec)
    payload = _cell_payload(cell)
    result = codec.compress(payload, cell.level)
    decoded = codec.decompress(result.data)
    return CellMeasurement(
        ratio=result.ratio,
        compress_mbps=DEFAULT_MACHINE.compress_speed(cell.codec, result.counters)
        / 1e6,
        decompress_mbps=DEFAULT_MACHINE.decompress_speed(
            cell.codec, decoded.counters
        )
        / 1e6,
        raw_bytes=len(payload),
        compressed_bytes=len(result.data),
    )


def fleet_measurement_cells(
    fleet: Optional[List[ServiceProfile]] = None,
    payload_bytes: int = DEFAULT_CELL_BYTES,
    max_level: int = 12,
) -> List[MeasurementCell]:
    """The full measured grid for ``fleet``, in deterministic order.

    zstd cells cover the service's level mix (clamped to ``max_level`` so a
    sweep never stalls on the optimal-parser levels); other codecs measure
    at their default level.
    """
    fleet = fleet if fleet is not None else DEFAULT_FLEET
    cells: List[MeasurementCell] = []
    for profile in fleet:
        if profile.compression_share <= 0:
            continue
        seed = sum(profile.name.encode()) * 7919
        for algorithm in sorted(profile.algorithm_mix):
            codec_name = _ALGORITHM_CODECS.get(algorithm)
            if codec_name is None:
                continue
            codec = get_codec(codec_name)
            if algorithm == "zstd" and profile.level_mix:
                levels = sorted(
                    min(level, max_level)
                    for level in profile.level_mix
                    if codec.min_level <= level <= codec.max_level
                )
                levels = sorted(set(levels))
            else:
                levels = [codec.default_level]
            for level in levels:
                cells.append(
                    MeasurementCell(
                        service=profile.name,
                        category=profile.category,
                        codec=codec_name,
                        level=level,
                        payload_bytes=payload_bytes,
                        seed=seed,
                    )
                )
    return cells


def run_fleet_sweep(
    jobs: Optional[int] = 1,
    fleet: Optional[List[ServiceProfile]] = None,
    payload_bytes: int = DEFAULT_CELL_BYTES,
) -> List[Tuple[MeasurementCell, CellMeasurement]]:
    """Measure every cell of the fleet grid, fanning out over ``jobs``."""
    cells = fleet_measurement_cells(fleet, payload_bytes=payload_bytes)
    runner = ParallelSweepRunner(measure_cell, jobs=jobs)
    return runner.run_tagged(cells)


def format_fleet_sweep(
    results: List[Tuple[MeasurementCell, CellMeasurement]]
) -> str:
    """Fixed-width table of the measured sweep (byte-stable across jobs)."""
    lines = [
        f"{'service':20s} {'codec':6s} {'lvl':>3s} {'ratio':>7s} "
        f"{'comp MB/s':>10s} {'decomp MB/s':>12s}"
    ]
    for cell, measured in results:
        lines.append(
            f"{cell.service:20s} {cell.codec:6s} {cell.level:3d} "
            f"{measured.ratio:7.3f} {measured.compress_mbps:10.1f} "
            f"{measured.decompress_mbps:12.1f}"
        )
    return "\n".join(lines)
