"""Range scan tests for SSTables and the LSM store."""

import pytest

from repro.corpus import generate_kv_records
from repro.services import KVStore
from repro.services.kvstore import SSTable


@pytest.fixture(scope="module")
def entries():
    return generate_kv_records(800, seed=71)


class TestSSTableRangeScan:
    def test_range_matches_reference(self, entries):
        table = SSTable.build(entries, level=1, block_size=2048)
        lo, hi = entries[200][0], entries[500][0]
        got = list(table.scan_range(lo, hi))
        expected = [(k, v) for k, v in entries if lo <= k < hi]
        assert got == expected

    def test_empty_range(self, entries):
        table = SSTable.build(entries, level=1)
        assert list(table.scan_range(b"z", b"a")) == []

    def test_range_before_all_keys(self, entries):
        table = SSTable.build(entries, level=1)
        assert list(table.scan_range(b"\x00", b"\x01")) == []

    def test_range_spanning_everything(self, entries):
        table = SSTable.build(entries, level=1, block_size=2048)
        got = list(table.scan_range(b"\x00", b"\xff"))
        assert got == entries

    def test_only_overlapping_blocks_decoded(self, entries):
        table = SSTable.build(entries, level=1, block_size=2048)
        lo, hi = entries[390][0], entries[410][0]
        before = table.stats.blocks_read
        list(table.scan_range(lo, hi))
        touched = table.stats.blocks_read - before
        assert touched < table.block_count // 2


class TestKVStoreRangeScan:
    def test_merges_memtable_and_ssts(self, entries):
        store = KVStore(memtable_bytes=1 << 14)
        for key, value in entries[:600]:
            store.put(key, value)
        store.flush()
        for key, value in entries[600:]:
            store.put(key, value)  # stays in memtable
        lo, hi = entries[100][0], entries[700][0]
        got = dict(store.scan_range(lo, hi))
        expected = {k: v for k, v in entries if lo <= k < hi}
        assert got == expected

    def test_newest_value_wins_in_range(self):
        store = KVStore(memtable_bytes=1 << 12)
        store.put(b"k/1", b"old")
        store.flush()
        store.put(b"k/1", b"new")
        got = dict(store.scan_range(b"k/", b"k/z"))
        assert got[b"k/1"] == b"new"

    def test_tombstones_hidden_in_range(self):
        store = KVStore(memtable_bytes=1 << 12)
        store.put(b"r/1", b"a")
        store.put(b"r/2", b"b")
        store.flush()
        store.delete(b"r/1")
        got = dict(store.scan_range(b"r/", b"r/z"))
        assert got == {b"r/2": b"b"}

    def test_results_sorted(self, entries):
        store = KVStore(memtable_bytes=1 << 13)
        for key, value in entries[:300]:
            store.put(key, value)
        store.flush()
        keys = [k for k, __ in store.scan_range(b"\x00", b"\xff")]
        assert keys == sorted(keys)
