"""The CompressionGateway: the serving plane's data path.

One object ties the traffic plane together: requests come in through the
:class:`~repro.serving.admission.AdmissionController` (explicit
admit/throttle/shed verdicts), wait in the weighted-fair
:class:`~repro.serving.queue.FairQueue`, are stepped down the
:class:`~repro.serving.degrade.DegradationLadder` under queue pressure,
and are finally compressed — on a :mod:`repro.parallel` executor, behind
a per-algorithm :class:`~repro.resilience.breaker.CircuitBreaker` that
trades a failing codec for the raw-passthrough path instead of erroring.

Time is always the simulated clock: service durations are *modeled* from
the codec's stage counters through the calibrated machine model, exactly
as the chaos runner models recovery latency, so a gateway driven by the
discrete-event simulator renders byte-identical results per seed.

Telemetry follows the PR-1 contract — every hook is gated on
``OBS_STATE.enabled`` so an un-instrumented gateway pays one branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.codecs import Compressor, get_codec
from repro.codecs.base import CodecError, StageCounters
from repro.obs.state import OBS_STATE
from repro.obs.instrument import (
    record_serving_queue_depth,
    record_serving_served,
    record_serving_verdict,
)
from repro.obs.timeseries import TimeSeriesRecorder
from repro.parallel.executors import SerialExecutor
from repro.perfmodel import DEFAULT_MACHINE, MachineModel
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import SimClock
from repro.serving.admission import (
    ADMIT,
    SHED,
    AdmissionController,
    AdmissionVerdict,
)
from repro.serving.degrade import DegradationLadder
from repro.serving.queue import FairQueue, ServingRequest
from repro.serving.slos import record_window_served, record_window_verdict

#: modeled memcpy bandwidth of the raw-passthrough path (bytes/second)
RAW_COPY_BANDWIDTH = 8e9
#: modeled fixed cost per served request (dispatch, framing, bookkeeping)
DEFAULT_OVERHEAD_SECONDS = 20e-6


@dataclass
class GatewayStats:
    """Everything the gateway did, cumulatively."""

    submitted: int = 0
    admitted: int = 0
    throttled: int = 0
    shed: int = 0
    expired: int = 0
    served: int = 0
    degraded: int = 0
    degraded_by_rung: Dict[str, int] = field(default_factory=dict)
    raw_fallbacks: int = 0
    bytes_in_served: int = 0
    bytes_out: int = 0
    #: bytes through degraded (rung > 0) dispatches, for the counterfactual
    #: "what would rung 0 have produced" accounting in the scorecard
    bytes_in_degraded: int = 0
    bytes_out_degraded: int = 0
    #: simulated time of the first degraded dispatch / first shed verdict
    first_degraded_at: Optional[float] = None
    first_shed_at: Optional[float] = None


@dataclass(frozen=True)
class ServedRequest:
    """One request's trip through the data path."""

    request: ServingRequest
    rung_index: int
    rung_label: str
    #: seconds spent queued before dispatch
    wait_seconds: float
    #: modeled seconds of service (compression or raw copy + overhead)
    service_seconds: float
    bytes_out: int
    #: True when the breaker or a codec failure forced raw passthrough
    raw_fallback: bool

    @property
    def degraded(self) -> bool:
        return self.rung_index > 0


def _compress_task(task: Tuple[str, int, bytes]) -> Tuple[int, StageCounters, str]:
    """Pool-safe compression worker: (bytes_out, counters, error).

    Module-level and dependent only on its arguments, per the
    :mod:`repro.parallel.executors` contract; errors travel back as
    strings because exceptions must not kill the pool.
    """
    algorithm, level, payload = task
    try:
        result = get_codec(algorithm).compress(payload, level)
    except (CodecError, ValueError) as error:
        return 0, StageCounters(), f"{type(error).__name__}: {error}"
    return len(result.data), result.counters, ""


class CompressionGateway:
    """Admission-controlled, degradation-aware compression service."""

    def __init__(
        self,
        ladder: DegradationLadder,
        capacity: int = 64,
        admission: Optional[AdmissionController] = None,
        tenant_weights: Optional[Dict[str, float]] = None,
        clock: Optional[SimClock] = None,
        executor=None,
        machine: MachineModel = DEFAULT_MACHINE,
        codec_factory: Optional[Callable[[str], Compressor]] = None,
        degradation_enabled: bool = True,
        overhead_seconds: float = DEFAULT_OVERHEAD_SECONDS,
        service_scale: float = 1.0,
        breaker_failure_threshold: int = 3,
        breaker_cooldown_seconds: float = 0.05,
        recorder: Optional[TimeSeriesRecorder] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.ladder = ladder
        self.capacity = capacity
        self.clock = clock if clock is not None else SimClock()
        self.machine = machine
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.queue = FairQueue(capacity=capacity, weights=tenant_weights)
        self.executor = executor if executor is not None else SerialExecutor()
        self.degradation_enabled = degradation_enabled
        self.overhead_seconds = overhead_seconds
        if service_scale <= 0:
            raise ValueError("service_scale must be positive")
        #: modeled host-contention factor: the serving host's effective
        #: throughput is 1/scale of the calibrated bare-metal machine
        #: model (co-located tenants, frequency caps, cold caches)
        self.service_scale = service_scale
        #: optional time-series recorder; when set, verdicts and serves
        #: land in its current window (the driver owns advancing time).
        #: One ``is not None`` branch per event when absent.
        self.recorder = recorder
        self.stats = GatewayStats()
        #: custom codec factories (fault injection) force in-process calls
        self._custom_codecs = codec_factory is not None
        factory = codec_factory if codec_factory is not None else get_codec
        self._codecs: Dict[str, Compressor] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        for rung in ladder.rungs:
            algorithm = rung.config.algorithm
            if algorithm not in self._codecs:
                self._codecs[algorithm] = factory(algorithm)
                self._breakers[algorithm] = CircuitBreaker(
                    f"serving-{algorithm}",
                    failure_threshold=breaker_failure_threshold,
                    cooldown_seconds=breaker_cooldown_seconds,
                    clock=self.clock,
                )

    # -- pressure -----------------------------------------------------------

    @property
    def pressure(self) -> float:
        """Queue occupancy in [0, 1]: the degradation/shed driver."""
        return self.queue.depth() / self.capacity

    def breaker(self, algorithm: str) -> CircuitBreaker:
        return self._breakers[algorithm]

    # -- ingress ------------------------------------------------------------

    def submit(self, request: ServingRequest) -> AdmissionVerdict:
        """Offer one request; admitted requests are queued."""
        self.stats.submitted += 1
        verdict = self.admission.admit(self.queue.depth(), self.capacity)
        if verdict.decision == ADMIT:
            if self.queue.offer(request):
                self.stats.admitted += 1
            else:
                verdict = AdmissionVerdict(
                    SHED, f"tenant {request.tenant} lane full"
                )
        if verdict.decision == SHED:
            self.stats.shed += 1
            if self.stats.first_shed_at is None:
                self.stats.first_shed_at = self.clock.now()
        elif verdict.decision != ADMIT:
            self.stats.throttled += 1
        if OBS_STATE.enabled:
            record_serving_verdict(request.tenant, verdict.decision)
            record_serving_queue_depth(self.queue.depth())
        if self.recorder is not None:
            record_window_verdict(
                self.recorder.registry(), request.tenant, verdict.decision
            )
        return verdict

    # -- egress -------------------------------------------------------------

    def serve_batch(self, now: float, max_count: int) -> List[ServedRequest]:
        """Dequeue up to ``max_count`` requests and compress them.

        The rung is chosen per request from the pressure *at dequeue time*
        (the queue drains as the batch forms, so a deep queue degrades its
        head harder than its tail). Compression itself runs through the
        executor; breaker accounting happens in the parent, mirroring how
        the parallel engine stitches worker telemetry.
        """
        plans: List[Tuple[ServingRequest, int, str, float, bool]] = []
        while len(plans) < max_count:
            request, expired = self.queue.poll(now)
            for dropped in expired:
                self.stats.expired += 1
                if OBS_STATE.enabled:
                    record_serving_verdict(dropped.tenant, "expired")
                if self.recorder is not None:
                    record_window_verdict(
                        self.recorder.registry(), dropped.tenant, "expired"
                    )
            if request is None:
                break
            rung_index = (
                self.ladder.select(self.pressure)
                if self.degradation_enabled
                else 0
            )
            rung = self.ladder.rung(rung_index)
            allowed = self._breakers[rung.config.algorithm].allow()
            plans.append(
                (request, rung_index, rung.label(), now - request.arrival, allowed)
            )
        if OBS_STATE.enabled:
            record_serving_queue_depth(self.queue.depth())
        return self._execute(plans)

    def _execute(
        self, plans: Sequence[Tuple[ServingRequest, int, str, float, bool]]
    ) -> List[ServedRequest]:
        tasks = []
        task_slots = []
        for slot, (request, rung_index, __, __, allowed) in enumerate(plans):
            if not allowed:
                continue
            config = self.ladder.rung(rung_index).config
            tasks.append((config.algorithm, config.level, request.payload))
            task_slots.append(slot)
        if self._custom_codecs:
            # injected codecs are stateful and unpicklable: run in-process
            results = [self._compress_custom(task) for task in tasks]
        else:
            results = self.executor.map(_compress_task, tasks)
        by_slot = dict(zip(task_slots, results))
        served: List[ServedRequest] = []
        for slot, (request, rung_index, rung_label, wait, allowed) in enumerate(
            plans
        ):
            rung = self.ladder.rung(rung_index)
            algorithm = rung.config.algorithm
            breaker = self._breakers[algorithm]
            raw = False
            if not allowed:
                raw = True
            else:
                bytes_out, counters, error = by_slot[slot]
                if error:
                    breaker.record_failure()
                    raw = True
                else:
                    breaker.record_success()
                    service = (
                        self.machine.compress_seconds(algorithm, counters)
                        * self.service_scale
                        + self.overhead_seconds
                    )
            if raw:
                bytes_out = request.size
                service = (
                    request.size / RAW_COPY_BANDWIDTH * self.service_scale
                    + self.overhead_seconds
                )
                self.stats.raw_fallbacks += 1
            served.append(
                ServedRequest(
                    request=request,
                    rung_index=rung_index,
                    rung_label=rung_label,
                    wait_seconds=wait,
                    service_seconds=service,
                    bytes_out=bytes_out,
                    raw_fallback=raw,
                )
            )
            self.stats.served += 1
            self.stats.bytes_in_served += request.size
            self.stats.bytes_out += bytes_out
            if rung_index > 0:
                self.stats.degraded += 1
                self.stats.degraded_by_rung[rung_label] = (
                    self.stats.degraded_by_rung.get(rung_label, 0) + 1
                )
                self.stats.bytes_in_degraded += request.size
                self.stats.bytes_out_degraded += bytes_out
                if self.stats.first_degraded_at is None:
                    self.stats.first_degraded_at = self.clock.now()
            if OBS_STATE.enabled:
                record_serving_served(
                    request.tenant,
                    rung_label,
                    wait,
                    service,
                    degraded=rung_index > 0,
                    raw_fallback=raw,
                )
            if self.recorder is not None:
                record_window_served(
                    self.recorder.registry(),
                    request.tenant,
                    rung_label,
                    degraded=rung_index > 0,
                    raw_fallback=raw,
                    bytes_in=request.size,
                    bytes_out=bytes_out,
                )
        return served

    def _compress_custom(
        self, task: Tuple[str, int, bytes]
    ) -> Tuple[int, StageCounters, str]:
        algorithm, level, payload = task
        try:
            result = self._codecs[algorithm].compress(payload, level)
        except (CodecError, ValueError) as error:
            return 0, StageCounters(), f"{type(error).__name__}: {error}"
        return len(result.data), result.counters, ""
