"""Crash plans and the crash injector: counting, firing, determinism."""

import pytest

from repro.faults import CrashInjector, CrashPlan, CrashPoint, SimulatedCrash
from repro.faults.plan import KINDS, NAMED_PLANS, FaultSpec


class TestCrashPlan:
    def test_single_builds_one_point(self):
        plan = CrashPlan.single("kvstore.flush.sst", 2)
        assert plan.points == (CrashPoint("kvstore.flush.sst", 2),)

    def test_none_is_empty(self):
        assert CrashPlan.none().points == ()

    def test_hit_must_be_positive(self):
        with pytest.raises(ValueError):
            CrashPoint("site", 0)


class TestCrashInjector:
    def test_fires_on_the_nth_hit(self):
        injector = CrashInjector(CrashPlan.single("site.a", 3))
        injector.reach("site.a")
        injector.reach("site.a")
        with pytest.raises(SimulatedCrash) as exc:
            injector.reach("site.a")
        assert exc.value.site == "site.a"
        assert exc.value.hit == 3
        assert injector.fired == ("site.a", 3)

    def test_other_sites_never_fire(self):
        injector = CrashInjector(CrashPlan.single("site.a", 1))
        for __ in range(5):
            injector.reach("site.b")
        assert injector.fired is None
        assert injector.reached["site.b"] == 5

    def test_fires_at_most_once(self):
        injector = CrashInjector(CrashPlan.single("site.a", 1))
        with pytest.raises(SimulatedCrash):
            injector.reach("site.a")
        injector.reach("site.a")  # already fired: counts, never raises
        assert injector.reached["site.a"] == 2

    def test_disarm_suppresses_firing(self):
        injector = CrashInjector(CrashPlan.single("site.a", 1))
        injector.disarm()
        # visits while disarmed still count (the hit is consumed): the
        # harness re-arms relative to the current count via arm_point
        injector.reach("site.a")
        assert injector.fired is None
        assert injector.reached["site.a"] == 1
        injector.rearm()
        injector.reach("site.a")  # hit 1 already passed — never fires
        assert injector.fired is None
        injector.arm_point("site.a")
        with pytest.raises(SimulatedCrash):
            injector.reach("site.a")

    def test_arm_point_is_relative_to_current_count(self):
        injector = CrashInjector(CrashPlan.none())
        injector.reach("site.a")
        injector.reach("site.a")
        injector.arm_point("site.a")  # die at the next visit
        with pytest.raises(SimulatedCrash) as exc:
            injector.reach("site.a")
        assert exc.value.hit == 3

    def test_multi_point_plan(self):
        plan = CrashPlan(
            "two", (CrashPoint("a", 1), CrashPoint("b", 1))
        )
        injector = CrashInjector(plan)
        with pytest.raises(SimulatedCrash):
            injector.reach("a")
        # one crash per injector: the process died
        injector.reach("b")
        assert injector.fired == ("a", 1)


class TestCrashFaultKind:
    def test_crash_is_a_known_kind(self):
        assert "crash" in KINDS
        FaultSpec("kvstore.durable", "crash", 0.5)  # validates

    def test_standard_plan_includes_durability_specs(self):
        specs = {
            (spec.site, spec.kind) for spec in NAMED_PLANS["standard"].specs
        }
        assert ("kvstore.durable", "crash") in specs
        assert ("kvstore.sync", "drop") in specs
