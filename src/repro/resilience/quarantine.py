"""Structured records for data poisoned by corruption.

When verified-decompress catches a :class:`CorruptDataError` on a read
path, the damaged unit (SST block, cache item) is *quarantined*: removed
from service and reported as a structured event rather than an unhandled
exception. Managed Compression keeps old dictionary versions so "blobs
compressed under older dictionaries remain decodable" (paper §II-B);
quarantine is the analogous contract for payloads that are no longer
decodable under any dictionary -- the failure is contained, named, and
countable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class QuarantinedBlock:
    """One unit of data removed from service after failing to decode."""

    #: which subsystem quarantined it, e.g. ``"kvstore.sst"``, ``"cache.server"``
    source: str
    #: human-readable unit id (block index, cache key repr, page number)
    identifier: str
    #: codec that failed to decode the unit
    codec: str
    #: what the decoder reported
    reason: str


@dataclass
class QuarantineLog:
    """Append-only collection of quarantine events with per-source counts."""

    events: List[QuarantinedBlock] = field(default_factory=list)

    def add(self, event: QuarantinedBlock) -> None:
        self.events.append(event)

    def count(self, source: str = "") -> int:
        """Events from ``source`` (prefix match); all events when empty."""
        if not source:
            return len(self.events)
        return sum(
            1
            for event in self.events
            if event.source == source or event.source.startswith(source + ".")
        )

    def by_source(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.source] = counts.get(event.source, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
