"""Match-finder interface and shared position hashing."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.codecs.base import StageCounters
from repro.codecs.lz77 import Token

#: Knuth multiplicative hashing constant (2654435761 = 2^32 / phi).
_HASH_MULTIPLIER = np.uint32(2654435761)


@dataclass(frozen=True)
class MatchFinderParams:
    """Tunable parameters of the LZ match-finding stage.

    These mirror the knobs the paper says compression levels control
    indirectly: the match window, hash/chain table sizes, search depth, and
    the parsing strategy.
    """

    window_log: int = 17
    hash_log: int = 15
    search_depth: int = 8
    min_match: int = 4
    #: stop searching once a match at least this long is found ("nice length")
    target_length: int = 64
    #: 0 = greedy, 1 = lazy, 2 = two-step lazy
    lazy_steps: int = 0
    #: skip-step growth for the fast strategy (larger = faster, worse ratio)
    acceleration: int = 1
    strategy: str = "greedy"
    #: hard cap on emitted match length (258 for DEFLATE, unlimited otherwise)
    max_match: int = 1 << 30
    #: hard cap on offsets beyond the window (65535 for the LZ4 format)
    max_offset: int = 1 << 30

    @property
    def window_size(self) -> int:
        return 1 << self.window_log

    def effective_max_offset(self) -> int:
        return min(self.window_size, self.max_offset)

    def with_window_log(self, window_log: int) -> "MatchFinderParams":
        """Copy with a different window (used by the CompSim window sweep)."""
        return replace(self, window_log=window_log)


def hash_positions(data: bytes, hash_log: int, hash_bytes: int) -> np.ndarray:
    """Vectorized multiplicative hash of every position's first bytes.

    Returns an int64 array of length ``max(0, len(data) - hash_bytes + 1)``
    with values in ``[0, 2**hash_log)``. Positions too close to the end have
    no hash (the parsers stop before them).
    """
    if hash_bytes < 3 or hash_bytes > 4:
        raise ValueError("hash_bytes must be 3 or 4")
    n = len(data)
    if n < hash_bytes:
        return np.empty(0, dtype=np.int64)
    arr = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
    value = arr[: n - hash_bytes + 1].copy()
    for k in range(1, hash_bytes):
        value |= arr[k : n - hash_bytes + 1 + k] << np.uint32(8 * k)
    hashed = (value * _HASH_MULTIPLIER) >> np.uint32(32 - hash_log)
    return hashed.astype(np.int64)


class MatchFinder:
    """Parses ``data[start:]`` into LZ77 tokens.

    ``data[:start]`` is history the parser may reference (the block's window
    prefix, or an out-of-band dictionary); it never re-emits those bytes.
    """

    def parse(
        self,
        data: bytes,
        start: int,
        params: MatchFinderParams,
        counters: Optional[StageCounters] = None,
    ) -> List[Token]:
        raise NotImplementedError

    @staticmethod
    def _finish(tokens: List[Token], anchor: int, end: int) -> List[Token]:
        """Append the trailing literals-only token when bytes remain."""
        if end > anchor:
            tokens.append(Token(end - anchor, 0, 0))
        return tokens
