"""Metric primitives: counters, gauges, histogram percentiles, merging."""

from __future__ import annotations

import random

import pytest

from repro.obs.export import registry_snapshot
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value_by_labels(self):
        c = Counter("calls")
        c.inc(algorithm="zstd", direction="compress")
        c.inc(2, algorithm="zstd", direction="compress")
        c.inc(5, algorithm="lz4", direction="compress")
        assert c.value(algorithm="zstd", direction="compress") == 3
        assert c.value(algorithm="lz4", direction="compress") == 5
        assert c.value(algorithm="zlib", direction="compress") == 0
        assert c.total() == 8

    def test_label_order_is_irrelevant(self):
        c = Counter("calls")
        c.inc(1, a="x", b="y")
        c.inc(1, b="y", a="x")
        assert c.value(a="x", b="y") == 2

    def test_negative_increment_rejected(self):
        c = Counter("calls")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_merge_adds_per_series(self):
        a, b = Counter("calls"), Counter("calls")
        a.inc(3, codec="zstd")
        b.inc(4, codec="zstd")
        b.inc(1, codec="lz4")
        a.merge(b)
        assert a.value(codec="zstd") == 7
        assert a.value(codec="lz4") == 1


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("resident_bytes")
        g.set(100, shard="0")
        g.inc(50, shard="0")
        g.dec(25, shard="0")
        assert g.value(shard="0") == 125


class TestHistogramPercentiles:
    def test_uniform_distribution(self):
        """p50/p90/p99 of uniform 1..1000 land within one bucket width."""
        h = Histogram("lat")
        for v in range(1, 1001):
            h.observe(float(v))
        assert h.count() == 1000
        assert h.sum() == pytest.approx(500500.0)
        assert h.min() == 1.0
        assert h.max() == 1000.0
        # log-bucketed: relative error bounded by ~ half a bucket (~9%),
        # plus discretization; 15% is a safe envelope.
        assert h.p50() == pytest.approx(500, rel=0.15)
        assert h.p90() == pytest.approx(900, rel=0.15)
        assert h.p99() == pytest.approx(990, rel=0.15)

    def test_constant_distribution(self):
        h = Histogram("lat")
        for _ in range(100):
            h.observe(5.0)
        for p in (1, 50, 99, 100):
            assert h.percentile(p) == pytest.approx(5.0, rel=0.10)

    def test_wide_dynamic_range(self):
        """Nanoseconds and seconds coexist; quantiles stay order-accurate."""
        h = Histogram("lat")
        for _ in range(99):
            h.observe(1e-9)
        h.observe(1.0)
        assert h.p50() == pytest.approx(1e-9, rel=0.15)
        assert h.percentile(100) == pytest.approx(1.0, rel=0.15)

    def test_zero_observations_bucket(self):
        """Zero-duration events (cache hits) count and rank below positives."""
        h = Histogram("lat")
        for _ in range(90):
            h.observe(0.0)
        for _ in range(10):
            h.observe(1.0)
        assert h.count() == 100
        assert h.p50() == 0.0
        assert h.percentile(99) == pytest.approx(1.0, rel=0.15)

    def test_empty_histogram(self):
        h = Histogram("lat")
        assert h.count() == 0
        assert h.p50() == 0.0
        assert h.percentile(99, missing="labels") == 0.0

    def test_percentile_range_validated(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_cumulative_buckets_monotone(self):
        h = Histogram("lat")
        rng = random.Random(7)
        for _ in range(500):
            h.observe(rng.lognormvariate(0, 2))
        buckets = h.cumulative_buckets()
        counts = [count for _, count in buckets]
        uppers = [upper for upper, _ in buckets]
        assert counts == sorted(counts)
        assert uppers == sorted(uppers)
        assert counts[-1] == 500


def _random_registry(seed: int) -> MetricsRegistry:
    rng = random.Random(seed)
    reg = MetricsRegistry()
    calls = reg.counter("calls")
    lat = reg.histogram("lat")
    mem = reg.gauge("mem")
    for _ in range(200):
        codec = rng.choice(["zstd", "lz4", "zlib"])
        calls.inc(rng.randrange(1, 5), codec=codec)
        lat.observe(rng.lognormvariate(-7, 1.5), codec=codec)
        mem.inc(rng.randrange(100), shard=str(seed))
    return reg


class TestRegistryMerge:
    def test_merge_is_associative(self):
        """(a ⊕ b) ⊕ c  ==  a ⊕ (b ⊕ c), compared by full snapshot."""
        left = MetricsRegistry()
        left.merge(_random_registry(1))
        left.merge(_random_registry(2))
        left.merge(_random_registry(3))

        bc = MetricsRegistry()
        bc.merge(_random_registry(2))
        bc.merge(_random_registry(3))
        right = MetricsRegistry()
        right.merge(_random_registry(1))
        right.merge(bc)

        assert registry_snapshot(left) == registry_snapshot(right)

    def test_merge_matches_single_shard_recording(self):
        """Sharded collection then merge == recording everything in one.

        Bucket counts, extremes, and every percentile are exactly equal;
        the running sum only up to float addition order.
        """
        merged = MetricsRegistry()
        combined = MetricsRegistry()
        lat = combined.histogram("lat")
        for seed in (10, 11, 12):
            shard = MetricsRegistry()
            shard_lat = shard.histogram("lat")
            rng = random.Random(seed)
            for _ in range(100):
                v = rng.lognormvariate(0, 1)
                shard_lat.observe(v)
                lat.observe(v)
            merged.merge(shard)
        got = merged.get("lat")
        assert got.count() == lat.count() == 300
        assert got.min() == lat.min()
        assert got.max() == lat.max()
        assert got.sum() == pytest.approx(lat.sum())
        assert got.cumulative_buckets() == lat.cumulative_buckets()
        for p in (1, 25, 50, 75, 90, 99, 100):
            assert got.percentile(p) == lat.percentile(p)

    def test_merge_kind_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m")
        b.gauge("m")
        with pytest.raises(TypeError):
            a.merge(b)

    def test_get_or_create_kind_conflict(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.histogram("m")


class TestPercentileMonotonicity:
    """p50 <= p90 <= p99 must hold on adversarial bucket boundaries."""

    def _assert_monotone(self, hist, **labels):
        sweep = [hist.percentile(p, **labels) for p in range(0, 101, 1)]
        for lo, hi in zip(sweep, sweep[1:]):
            assert lo <= hi, sweep
        assert hist.p50(**labels) <= hist.p90(**labels) <= hist.p99(**labels)
        if hist.count(**labels):
            assert hist.percentile(100, **labels) <= hist.max(**labels)

    def test_exact_bucket_boundaries(self):
        import math

        hist = Histogram("bound", buckets_per_octave=4)
        base = math.log(2.0) / 4
        # values pinned exactly on (and a half-ulp around) the log-bucket
        # edges, where floor(log(v)/base) is most likely to waver
        for k in range(-40, 41):
            edge = math.exp(k * base)
            for value in (edge, math.nextafter(edge, 0.0),
                          math.nextafter(edge, math.inf)):
                hist.observe(value)
        self._assert_monotone(hist)

    def test_zeros_and_wide_dynamic_range(self):
        hist = Histogram("zeros", buckets_per_octave=4)
        for __ in range(10):
            hist.observe(0.0)
        for value in (1e-9, 1e-9, 1e-3, 1.0, 1.0, 1e6):
            hist.observe(value)
        self._assert_monotone(hist)
        # with 10/16 observations at zero, the median is the zero floor
        assert hist.p50() == 0.0

    def test_single_value_collapses(self):
        hist = Histogram("single", buckets_per_octave=4)
        hist.observe(0.125)
        assert hist.p50() == hist.p90() == hist.p99() == 0.125
        self._assert_monotone(hist)

    def test_monotone_after_merge(self):
        import math

        a = Histogram("m", buckets_per_octave=4)
        b = Histogram("m", buckets_per_octave=4)
        base = math.log(2.0) / 4
        for k in range(-12, 13):
            a.observe(math.exp(k * base), source="x")
            b.observe(math.exp((k + 0.5) * base), source="x")
        b.observe(0.0, source="x")
        a.merge(b)
        self._assert_monotone(a, source="x")
