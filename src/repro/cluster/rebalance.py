"""Tenant routing over the ring, plus hot-tenant rebalancing.

Routing is two layers. The :class:`TenantRouter` answers "which nodes
serve this tenant" — normally the ring's replica set, but a rebalance
can pin a tenant to an explicit override set. Within a replica set,
requests spread by ``request_id % len(replicas)``: deterministic,
stateless, and deliberately making one tenant's traffic *span* its
replicas — the multi-shard reality the SLO drilldown fix in
:mod:`repro.serving.slos` is tested against.

The :class:`Rebalancer` watches per-tenant routed volume per shard
between control ticks. A tenant that dominates a pressured shard (share
of its routed traffic ≥ ``hot_share`` while the shard's queue pressure
≥ ``pressure_floor``) is migrated: its replica set is overridden to the
least-pressured active nodes. Only that tenant's keys move — the ring
itself is untouched, so every other tenant's routing is provably
unchanged (the minimal-movement companion to the ring's own property).
A per-tenant cooldown stops the same tenant ping-ponging between
shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.ring import HashRing


@dataclass(frozen=True)
class RebalanceEvent:
    """One executed migration, for the scorecard."""

    at: float
    tenant: str
    from_nodes: Tuple[str, ...]
    to_nodes: Tuple[str, ...]
    reason: str


class TenantRouter:
    """Replica-set lookup: ring by default, overrides after rebalance."""

    def __init__(self, ring: HashRing) -> None:
        self.ring = ring
        self.overrides: Dict[str, Tuple[str, ...]] = {}

    def replica_set(self, tenant: str) -> Tuple[str, ...]:
        override = self.overrides.get(tenant)
        if override is not None:
            return override
        return tuple(self.ring.replica_set(tenant))

    def route(self, tenant: str, request_id: int) -> str:
        replicas = self.replica_set(tenant)
        return replicas[request_id % len(replicas)]

    def assignments(self, tenants: Sequence[str]) -> Dict[str, Tuple[str, ...]]:
        return {t: self.replica_set(t) for t in tenants}

    def drop_node(self, node: str, tenants: Sequence[str]) -> List[str]:
        """Remove a departing node from routing; returns moved tenants.

        The node must already be off the ring. Overrides that referenced
        it are rewritten against the ring (falling back to the natural
        replica set keeps the override's intent without inventing a
        placement policy here). The returned tenants are those whose
        replica set actually changed — the "only keys it owned move"
        accounting for scale-down events.
        """
        before = self.assignments(tenants)
        for tenant, nodes in list(self.overrides.items()):
            if node in nodes:
                del self.overrides[tenant]
        return [
            t for t in tenants if self.replica_set(t) != before[t]
        ]


@dataclass(frozen=True)
class RebalancerConfig:
    """When a tenant counts as hot, and how migration is damped."""

    #: tenant's share of a shard's routed traffic to count as hot
    hot_share: float = 0.5
    #: shard queue pressure below which nothing migrates
    pressure_floor: float = 0.5
    #: minimum routed requests on the shard this tick (noise floor)
    min_requests: int = 20
    #: per-tenant quiet period between migrations, simulated seconds
    cooldown_seconds: float = 1.0


class Rebalancer:
    """Migrates hot tenants off pressured shards via router overrides."""

    def __init__(
        self,
        router: TenantRouter,
        config: Optional[RebalancerConfig] = None,
    ) -> None:
        self.router = router
        self.config = config if config is not None else RebalancerConfig()
        self.events: List[RebalanceEvent] = []
        self._last_moved_at: Dict[str, float] = {}

    def observe(
        self,
        now: float,
        routed_by_node: Dict[str, Dict[str, int]],
        pressures: Dict[str, float],
        active_nodes: Sequence[str],
    ) -> List[RebalanceEvent]:
        """One control tick: find hot (tenant, shard) pairs and migrate.

        ``routed_by_node`` is requests routed per node per tenant since
        the previous tick; ``pressures`` the nodes' current queue
        pressures. Iteration order is sorted throughout so the decision
        sequence is deterministic.
        """
        cfg = self.config
        replicas = self.router.ring.replicas
        fired: List[RebalanceEvent] = []
        for node in sorted(routed_by_node):
            if pressures.get(node, 0.0) < cfg.pressure_floor:
                continue
            by_tenant = routed_by_node[node]
            total = sum(by_tenant.values())
            if total < cfg.min_requests:
                continue
            # hottest tenant first; name breaks ties deterministically
            for tenant, count in sorted(
                by_tenant.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                if count / total < cfg.hot_share:
                    break
                last = self._last_moved_at.get(tenant)
                if last is not None and now - last < cfg.cooldown_seconds:
                    continue
                current = self.router.replica_set(tenant)
                # coldest active nodes, excluding the pressured shard
                candidates = sorted(
                    (n for n in active_nodes if n != node),
                    key=lambda n: (pressures.get(n, 0.0), n),
                )
                target = tuple(candidates[:replicas])
                if not target or target == current:
                    continue
                self.router.overrides[tenant] = target
                self._last_moved_at[tenant] = now
                event = RebalanceEvent(
                    at=now,
                    tenant=tenant,
                    from_nodes=current,
                    to_nodes=target,
                    reason=(
                        f"{count}/{total} of shard {node} at pressure "
                        f"{pressures.get(node, 0.0):.2f}"
                    ),
                )
                self.events.append(event)
                fired.append(event)
        return fired
