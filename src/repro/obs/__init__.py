"""``repro.obs`` — the fleet telemetry subsystem.

The always-on profiling layer the paper's characterization rests on
(Section III-A), reproduced as a process-wide metrics registry plus trace
spans, with instrumentation threaded through the codec layer and every
service substrate:

- :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / log-bucketed
  ``Histogram`` families in a mergeable :class:`MetricsRegistry`.
- :mod:`repro.obs.spans` — nested wall-time spans forming flame-style
  per-request attributions.
- :mod:`repro.obs.instrument` — the hook functions hot paths call.
- :mod:`repro.obs.export` — Prometheus text, JSON-lines, and table views.
- ``repro obs`` (CLI) — run a workload and emit a snapshot.

Telemetry is **off by default** and zero-cost when disabled: instrumented
call sites check one module-level flag (:data:`repro.obs.state.OBS_STATE`)
and skip everything else. Typical use::

    from repro import obs

    obs.enable()
    ...  # run any workload: kvstore reads, RPC sends, cache gets
    print(obs.to_prometheus(obs.get_registry()))
"""

from repro.obs.export import (
    registry_snapshot,
    to_jsonl,
    to_prometheus,
    to_table,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.spans import (
    SpanRecord,
    current_span,
    flame_counts,
    recent_roots,
    reset_spans,
    span,
)
from repro.obs.state import OBS_STATE, disable, enable, is_enabled


def reset() -> None:
    """Clear all collected telemetry (registry and spans); flag unchanged."""
    get_registry().clear()
    reset_spans()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_STATE",
    "SpanRecord",
    "current_span",
    "disable",
    "enable",
    "flame_counts",
    "get_registry",
    "is_enabled",
    "recent_roots",
    "registry_snapshot",
    "reset",
    "reset_spans",
    "span",
    "to_jsonl",
    "to_prometheus",
    "to_table",
]
