"""Aggregation of profiler samples into the fleet-level views of Figs 2-5."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fleet.callstack import CallStackSample, classify_stack


@dataclass
class FleetCharacterization:
    """Everything Section III reports, computed from call-stack samples."""

    total_weight: int = 0
    compression_weight: int = 0
    #: algorithm -> cycles share of the whole fleet (Section III-B)
    algorithm_shares: Dict[str, float] = field(default_factory=dict)
    #: category -> zstd cycles share within the category (Fig. 2)
    category_zstd_share: Dict[str, float] = field(default_factory=dict)
    #: category -> (compress fraction, decompress fraction) of zstd cycles (Fig. 3)
    category_split: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: zstd level -> share of level-attributed compression cycles (Fig. 4)
    level_usage: Dict[int, float] = field(default_factory=dict)
    #: category -> (level -> share); per-category view of Fig. 4 (the
    #: "over 80% for Feed" observation)
    category_level_usage: Dict[str, Dict[int, float]] = field(default_factory=dict)
    #: service -> drawn block sizes (Fig. 5)
    block_sizes: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def compression_share(self) -> float:
        """Fraction of all fleet cycles spent in (de)compression."""
        return self.compression_weight / self.total_weight if self.total_weight else 0.0

    def low_level_share(self, threshold: int = 4) -> float:
        """Share of level cycles at levels <= threshold (Fig. 4's headline)."""
        total = sum(self.level_usage.values())
        if not total:
            return 0.0
        low = sum(share for level, share in self.level_usage.items() if level <= threshold)
        return low / total

    def category_low_level_share(self, category: str, threshold: int = 4) -> float:
        """Per-category variant of :meth:`low_level_share`."""
        usage = self.category_level_usage.get(category, {})
        total = sum(usage.values())
        if not total:
            return 0.0
        low = sum(share for level, share in usage.items() if level <= threshold)
        return low / total


def characterize(samples: List[CallStackSample]) -> FleetCharacterization:
    """Filter stacks for compression APIs and aggregate, as Section III-A."""
    result = FleetCharacterization()
    algo_weights: Dict[str, int] = {}
    category_total: Dict[str, int] = {}
    category_zstd: Dict[str, int] = {}
    category_compress: Dict[str, int] = {}
    category_decompress: Dict[str, int] = {}
    level_weights: Dict[int, int] = {}
    category_level_weights: Dict[str, Dict[int, int]] = {}

    for sample in samples:
        result.total_weight += sample.weight
        category_total[sample.category] = (
            category_total.get(sample.category, 0) + sample.weight
        )
        classified = classify_stack(sample.frames)
        if classified is None:
            continue
        algorithm, direction = classified
        result.compression_weight += sample.weight
        algo_weights[algorithm] = algo_weights.get(algorithm, 0) + sample.weight
        if algorithm == "zstd":
            category_zstd[sample.category] = (
                category_zstd.get(sample.category, 0) + sample.weight
            )
            if direction == "compress":
                category_compress[sample.category] = (
                    category_compress.get(sample.category, 0) + sample.weight
                )
                if sample.level is not None:
                    level_weights[sample.level] = (
                        level_weights.get(sample.level, 0) + sample.weight
                    )
                    per_category = category_level_weights.setdefault(
                        sample.category, {}
                    )
                    per_category[sample.level] = (
                        per_category.get(sample.level, 0) + sample.weight
                    )
            else:
                category_decompress[sample.category] = (
                    category_decompress.get(sample.category, 0) + sample.weight
                )
        if sample.block_size is not None:
            result.block_sizes.setdefault(sample.service, []).append(
                sample.block_size
            )

    total = result.total_weight or 1
    result.algorithm_shares = {
        algo: weight / total for algo, weight in algo_weights.items()
    }
    for category, cat_total in category_total.items():
        zstd_weight = category_zstd.get(category, 0)
        result.category_zstd_share[category] = (
            zstd_weight / cat_total if cat_total else 0.0
        )
        compress = category_compress.get(category, 0)
        decompress = category_decompress.get(category, 0)
        denominator = compress + decompress
        if denominator:
            result.category_split[category] = (
                compress / denominator,
                decompress / denominator,
            )
    level_total = sum(level_weights.values()) or 1
    result.level_usage = {
        level: weight / level_total for level, weight in sorted(level_weights.items())
    }
    for category, weights in category_level_weights.items():
        category_total = sum(weights.values()) or 1
        result.category_level_usage[category] = {
            level: weight / category_total
            for level, weight in sorted(weights.items())
        }
    return result
