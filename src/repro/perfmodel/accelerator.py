"""Hardware accelerator model (the paper's CompSim speed treatment).

The paper's CompSim estimates an accelerator's (de)compression speed by
multiplying a measured software speed by a factor gamma, and lets the
designer supply a separate compute-cost coefficient for accelerator cycles
(Section V-A). :class:`HardwareAccelerator` implements exactly that: it wraps
a software codec (possibly a simplified HW-friendly variant with, e.g., a
restricted match window) and scales its modeled speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.codecs.base import Compressor, StageCounters
from repro.perfmodel.machine import DEFAULT_MACHINE, MachineModel


@dataclass(frozen=True)
class HardwareAccelerator:
    """Speed-multiplier model of a compression accelerator.

    ``gamma`` multiplies both compression and decompression speed of the
    wrapped codec (set ``decompress_gamma`` to scale them differently);
    ``offload_overhead_seconds`` is a fixed per-call cost for crossing to the
    accelerator, which the paper warns "can often nullify the benefits" for
    small blocks (Section VI-B).
    """

    name: str
    codec: Compressor
    gamma: float = 10.0
    decompress_gamma: Optional[float] = None
    offload_overhead_seconds: float = 0.0
    machine: MachineModel = DEFAULT_MACHINE

    def compress_seconds(self, counters: StageCounters) -> float:
        base = self.machine.compress_seconds(self.codec.name, counters)
        return base / self.gamma + self.offload_overhead_seconds

    def decompress_seconds(self, counters: StageCounters) -> float:
        gamma = self.decompress_gamma if self.decompress_gamma else self.gamma
        base = self.machine.decompress_seconds(self.codec.name, counters)
        return base / gamma + self.offload_overhead_seconds

    def compress_speed(self, counters: StageCounters) -> float:
        seconds = self.compress_seconds(counters)
        return counters.bytes_in / seconds if seconds > 0 else float("inf")

    def decompress_speed(self, counters: StageCounters) -> float:
        seconds = self.decompress_seconds(counters)
        return counters.bytes_out / seconds if seconds > 0 else float("inf")
