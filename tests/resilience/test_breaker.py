"""CircuitBreaker state machine on the simulated clock."""

import pytest

from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, SimClock


def _tripped(threshold=3, cooldown=1.0, half_open_successes=1):
    clock = SimClock()
    breaker = CircuitBreaker(
        "test",
        failure_threshold=threshold,
        cooldown_seconds=cooldown,
        half_open_successes=half_open_successes,
        clock=clock,
    )
    for __ in range(threshold):
        breaker.record_failure()
    return breaker, clock


class TestSimClock:
    def test_monotonic(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now() == pytest.approx(1.5)
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_sleep_alias(self):
        clock = SimClock(start=2.0)
        clock.sleep(0.5)
        assert clock.now() == pytest.approx(2.5)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self):
        breaker, __ = _tripped(threshold=3)
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never 3 in a row

    def test_open_rejects_until_cooldown(self):
        breaker, clock = _tripped(cooldown=1.0)
        assert not breaker.allow()
        assert breaker.rejected == 1
        clock.advance(0.5)
        assert not breaker.allow()
        clock.advance(0.6)  # past the cooldown
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_half_open_success_closes(self):
        breaker, clock = _tripped(cooldown=1.0)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = _tripped(cooldown=1.0)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow()  # cooldown restarted at the new trip
        clock.advance(1.0)
        assert breaker.allow()

    def test_multiple_trial_successes_required(self):
        breaker, clock = _tripped(cooldown=1.0, half_open_successes=2)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_transitions_are_recorded_with_clock_readings(self):
        breaker, clock = _tripped(cooldown=1.0)
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert [(f, t) for __, f, t in breaker.transitions] == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]
        assert breaker.transitions[1][0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_successes=0)
