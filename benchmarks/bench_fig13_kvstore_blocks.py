"""Fig. 13: KVSTORE1 block-size sweep (1KB..64KB, Zstd level 1): compression
ratio, compression speed, and decompression time per block.

Paper shape: larger blocks give (usually) higher ratio, higher speed, and
longer per-block decompression time; very small blocks hit fixed
per-compression costs (shrunken hash tables fight call overhead), giving a
non-monotonic speed profile.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.corpus import generate_kv_records
from repro.perfmodel import DEFAULT_MACHINE
from repro.services.kvstore import SSTable

_BLOCK_SIZES = [1024, 2048, 4096, 8192, 16384, 32768, 65536]


@pytest.fixture(scope="module")
def sweep():
    entries = generate_kv_records(2500, seed=130)
    out = {}
    for block_size in _BLOCK_SIZES:
        table = SSTable.build(entries, level=1, block_size=block_size)
        ratio = table.stats.raw_bytes / table.stats.stored_bytes
        speed = DEFAULT_MACHINE.compress_speed(
            "zstd", table.stats.compress_counters
        )
        # average decode time over several point reads
        total_decode = 0.0
        probes = entries[:: max(1, len(entries) // 20)]
        for key, __ in probes:
            __, __, decode_seconds = table.get(key)
            total_decode += decode_seconds
        out[block_size] = (ratio, speed / 1e6, total_decode / len(probes) * 1e6)
    return out


def test_fig13_kvstore_blocks(benchmark, sweep, figure_output):
    rows = [
        [
            f"{block_size // 1024}KB",
            f"{ratio:.2f}",
            f"{speed:.0f}",
            f"{decode_us:.1f}",
        ]
        for block_size, (ratio, speed, decode_us) in sorted(sweep.items())
    ]
    figure_output(
        "fig13_kvstore_blocks",
        format_table(
            ["block", "ratio", "comp MB/s", "decomp us/block"],
            rows,
            title="Fig. 13: KVSTORE1 block-size sweep (Zstd level 1)",
        ),
    )
    ratios = [sweep[b][0] for b in _BLOCK_SIZES]
    decodes = [sweep[b][2] for b in _BLOCK_SIZES]
    # ratio (usually) grows with block size: endpoints strictly ordered
    assert ratios[-1] > ratios[0]
    # per-block decode time grows with block size
    assert decodes == sorted(decodes)
    # speed: large blocks beat tiny blocks (fixed costs amortized)
    assert sweep[65536][1] > sweep[1024][1]

    entries = generate_kv_records(400, seed=131)
    benchmark(lambda: SSTable.build(entries, level=1, block_size=16384))
