"""The chaos runner and its CLI: determinism, survival, exit codes."""

import pytest

from repro.chaos import format_scorecard, run_chaos
from repro.cli import main


class TestRunChaos:
    def test_standard_plan_recovers_and_never_crashes(self):
        report = run_chaos(plan="standard", seed=7, ops=0.5)
        assert report.recovered > 0
        assert report.failed == 0
        assert report.ok + report.recovered == report.operations
        assert report.faults_injected > 0

    def test_byte_identical_across_runs(self):
        first = format_scorecard(run_chaos(plan="standard", seed=7, ops=0.5))
        second = format_scorecard(run_chaos(plan="standard", seed=7, ops=0.5))
        assert first == second

    def test_seed_changes_the_scorecard(self):
        first = format_scorecard(run_chaos(plan="standard", seed=7, ops=0.5))
        second = format_scorecard(run_chaos(plan="standard", seed=8, ops=0.5))
        assert first != second

    def test_none_plan_injects_nothing(self):
        report = run_chaos(plan="none", seed=7, ops=0.25)
        assert report.faults_injected == 0
        assert report.failed == 0
        assert report.fault_breakdown == []

    def test_every_named_plan_survives(self):
        from repro.faults import NAMED_PLANS

        for name in NAMED_PLANS:
            report = run_chaos(plan=name, seed=3, ops=0.25)
            assert report.operations > 0
            # the resilience contract: no operation may be lost silently --
            # every one lands in exactly one of ok/recovered/failed
            assert report.ok + report.recovered + report.failed == report.operations

    def test_ops_scales_operation_counts(self):
        small = run_chaos(plan="none", seed=1, ops=0.25)
        full = run_chaos(plan="none", seed=1, ops=1.0)
        assert small.operations < full.operations

    def test_unknown_plan_raises(self):
        with pytest.raises(ValueError, match="available"):
            run_chaos(plan="hurricane", seed=1)

    def test_recovery_latency_histogram_populated(self):
        report = run_chaos(plan="standard", seed=7, ops=0.5)
        count = report.recovery.count(source="all")
        assert count == report.recovered
        assert report.recovery.p50(source="all") >= 0.0


class TestScorecardFormat:
    def test_contains_every_scenario_line(self):
        report = run_chaos(plan="standard", seed=7, ops=0.25)
        text = format_scorecard(report)
        for name in [
            "rpc", "cache", "kvstore", "farmem", "managed", "serving",
            "kvstore-crash", "total",
        ]:
            assert name in text
        assert "plan 'standard', seed 7" in text

    def test_none_plan_omits_fault_breakdown(self):
        text = format_scorecard(run_chaos(plan="none", seed=7, ops=0.25))
        assert "faults by site" not in text
        assert "0 faults injected" in text


class TestChaosCli:
    def test_exit_zero_on_survival(self, capsys):
        code = main(
            ["chaos", "--plan", "standard", "--seed", "7", "--ops", "0.25",
             "--min-recovered", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos scorecard" in out

    def test_exit_one_when_min_recovered_unmet(self, capsys):
        code = main(
            ["chaos", "--plan", "none", "--seed", "7", "--ops", "0.25",
             "--min-recovered", "10000"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_exit_one_when_max_failed_exceeded(self, capsys):
        code = main(
            ["chaos", "--plan", "standard", "--seed", "7", "--ops", "0.25",
             "--max-failed", "-1"]
        )
        assert code == 1

    def test_rejects_unknown_plan(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--plan", "hurricane"])


class TestChaosTimeline:
    def test_timeline_windows_cover_every_operation(self):
        report = run_chaos(plan="standard", seed=7, ops=0.5)
        timeline = report.timeline
        assert timeline is not None
        total_ops = sum(
            s.ok + s.recovered + s.failed for s in report.scenarios
        )
        assert sum(
            w.ok + w.recovered + w.failed for w in timeline.windows
        ) == total_ops
        for i, window in enumerate(timeline.windows):
            assert window.index == i
            assert window.start_op == i * timeline.window_ops

    def test_outcome_streams_match_counters(self):
        report = run_chaos(plan="standard", seed=7, ops=0.5)
        for scenario in report.scenarios:
            assert len(scenario.outcomes) == (
                scenario.ok + scenario.recovered + scenario.failed
            )
            assert scenario.outcomes.count("ok") == scenario.ok
            assert scenario.outcomes.count("recovered") == scenario.recovered
            assert scenario.outcomes.count("failed") == scenario.failed

    def test_timeline_deterministic_per_seed(self):
        def edges(seed):
            timeline = run_chaos(plan="standard", seed=seed, ops=0.5).timeline
            return [
                (t.at, t.slo, t.from_state, t.to_state)
                for t in timeline.transitions
            ]

        assert edges(7) == edges(7)

    def test_standard_plan_alerts_on_recovery_pressure(self):
        timeline = run_chaos(plan="standard", seed=7, ops=0.5).timeline
        assert any(
            t.slo == "recovery_rate" and t.to_state in ("warn", "page")
            for t in timeline.transitions
        )
        assert timeline.worst_state() in ("warn", "page")

    def test_none_plan_never_alerts_on_failures(self):
        # without injected faults nothing fails, so the failure-rate SLO
        # stays silent; recovery_rate may still fire (the managed and
        # serving substrates recover through fallbacks even unfaulted)
        timeline = run_chaos(plan="none", seed=7, ops=0.5).timeline
        assert all(t.slo != "failure_rate" for t in timeline.transitions)

    def test_all_ok_stream_stays_quiet(self):
        from repro.chaos import ScenarioResult, build_chaos_timeline

        clean = ScenarioResult(
            name="synthetic", operations=200, ok=200, recovered=0,
            failed=0, outcomes=["ok"] * 200,
        )
        timeline = build_chaos_timeline([clean])
        assert timeline.transitions == []
        assert timeline.worst_state() == "ok"
        assert len(timeline.windows) == 200 // timeline.window_ops

    def test_scorecard_renders_alert_section(self):
        report = run_chaos(plan="standard", seed=7, ops=0.5)
        card = format_scorecard(report)
        assert "alert timeline (25-op windows" in card
        assert "final states:" in card
        assert "recovery_rate" in card
