"""Sweep fan-out: cell order preserved, jobs=1 vs jobs=N byte-identical."""

import pytest

from repro.fleet import (
    fleet_measurement_cells,
    format_fleet_sweep,
    measure_cell,
    run_fleet_sweep,
)
from repro.parallel import ParallelSweepRunner, run_cells


def _square(cell):
    return cell * cell


def test_results_align_with_cell_order():
    runner = ParallelSweepRunner(_square, jobs=1)
    assert runner.run([3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]


def test_pool_results_identical_to_serial():
    cells = list(range(40))
    assert run_cells(_square, cells, jobs=1) == run_cells(_square, cells, jobs=4)


def test_run_tagged_pairs_cells_with_results():
    runner = ParallelSweepRunner(_square, jobs=2)
    assert runner.run_tagged([2, 3]) == [(2, 4), (3, 9)]


def test_empty_sweep():
    runner = ParallelSweepRunner(_square, jobs=4)
    assert runner.run([]) == []
    assert runner.last_wall_seconds == 0.0


def test_wall_clock_recorded():
    runner = ParallelSweepRunner(_square, jobs=1)
    runner.run([1, 2, 3])
    assert runner.last_wall_seconds > 0.0


@pytest.fixture(scope="module")
def fleet_cells():
    return fleet_measurement_cells(payload_bytes=1024, max_level=3)


def test_fleet_cells_cover_every_service_and_codec(fleet_cells):
    services = {cell.service for cell in fleet_cells}
    assert len(services) >= 5  # the fleet model spans many services
    assert {cell.codec for cell in fleet_cells} >= {"zstd"}


def test_fleet_sweep_deterministic_across_jobs(fleet_cells):
    serial = run_cells(measure_cell, fleet_cells, jobs=1)
    pooled = run_cells(measure_cell, fleet_cells, jobs=4)
    assert serial == pooled
    table_serial = format_fleet_sweep(zip(fleet_cells, serial))
    table_pooled = format_fleet_sweep(zip(fleet_cells, pooled))
    assert table_serial == table_pooled


def test_run_fleet_sweep_end_to_end():
    measured = run_fleet_sweep(jobs=2, payload_bytes=512)
    assert measured
    for cell, measurement in measured:
        assert measurement.ratio > 0, cell
        assert measurement.raw_bytes > 0, cell
    text = format_fleet_sweep(measured)
    assert "service" in text.splitlines()[0] or "service" in text
