"""KVSTORE1 scenario: run the LSM store end-to-end and sweep SST block
sizes against a read-latency SLO (paper Section IV-E / Fig. 13 and
sensitivity study 2).

Run:  python examples/kvstore_block_size.py
"""

from repro import (
    CompEngine,
    CompOpt,
    CompressionConfig,
    CostModel,
    CostParameters,
    MaxBlockDecodeLatency,
)
from repro.corpus import generate_kv_records
from repro.services import KVStore


def main() -> None:
    # --- end-to-end LSM store ------------------------------------------------
    print("running the LSM store (put -> flush -> compact -> get):")
    store = KVStore(compression_level=1, block_size=16384, memtable_bytes=1 << 15)
    records = generate_kv_records(2000, seed=3)
    for key, value in records:
        store.put(key, value)
    store.flush()
    for key, expected in records[::97]:
        assert store.get(key) == expected
    print(
        f"  SSTs: {store.sst_count}  flushes: {store.stats.flushes}  "
        f"compactions: {store.stats.compactions}"
    )
    print(
        f"  storage ratio: {store.stats.storage_ratio:.2f}x  "
        f"mean read decode: {store.stats.mean_read_decode_seconds * 1e6:.1f} us"
    )

    # --- block size sweep -----------------------------------------------------
    print("\nblock size sweep (zstd level 1):")
    for block_size in (1024, 4096, 16384, 65536):
        sweep_store = KVStore(
            compression_level=1, block_size=block_size, memtable_bytes=1 << 15
        )
        for key, value in records:
            sweep_store.put(key, value)
        sweep_store.flush()
        for key, __ in records[::53]:
            sweep_store.get(key)
        print(
            f"  {block_size // 1024:3d}KB blocks: "
            f"ratio {sweep_store.stats.storage_ratio:5.2f}x  "
            f"read decode {sweep_store.stats.mean_read_decode_seconds * 1e6:6.1f} us"
        )

    # --- CompOpt with a read-latency SLO --------------------------------------
    print("\nCompOpt (compute + flash storage, per-block decode budget):")
    sample = b"".join(k + b"\x00" + v for k, v in records)
    engine = CompEngine([sample])
    params = CostParameters.from_price_book(
        network_weight=0.0, storage_kind="flash", beta=1e-7, retention_days=90.0
    )
    grid = [
        CompressionConfig(algo, 1, block)
        for algo in ("zstd", "lz4")
        for block in (4096, 8192, 16384, 32768, 65536)
    ]
    mid_latency = engine.measure(CompressionConfig("zstd", 1, 16384))
    budget = mid_latency.decode_seconds_per_block * 1.5
    optimizer = CompOpt(
        engine, CostModel(params), [MaxBlockDecodeLatency(budget)]
    )
    result = optimizer.optimize(grid)
    unconstrained = CompOpt(engine, CostModel(params)).optimize(grid)
    print(f"  unconstrained winner: {unconstrained.best_any.config.label()}")
    print(
        f"  with a {budget * 1e6:.1f} us decode budget: "
        f"{result.best.config.label()}"
    )


if __name__ == "__main__":
    main()
