"""Match finder tests: every strategy must produce valid, useful parses."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.base import StageCounters
from repro.codecs.lz77 import tokens_cover, validate_parse
from repro.codecs.matchfinders import (
    HashChainMatchFinder,
    MatchFinderParams,
    OptimalMatchFinder,
    SingleHashMatchFinder,
    finder_for_strategy,
    hash_positions,
)

_FINDERS = [
    (SingleHashMatchFinder(), MatchFinderParams(strategy="fast")),
    (HashChainMatchFinder(), MatchFinderParams(strategy="greedy", search_depth=8)),
    (
        HashChainMatchFinder(),
        MatchFinderParams(strategy="lazy", search_depth=8, lazy_steps=1),
    ),
    (
        HashChainMatchFinder(),
        MatchFinderParams(strategy="lazy2", search_depth=16, lazy_steps=2),
    ),
    (OptimalMatchFinder(), MatchFinderParams(strategy="optimal", search_depth=8)),
]

_SAMPLES = [
    b"",
    b"abc",
    b"aaaaaaaaaaaaaaaaaaaaaaaa",
    b"abcabcabcabcabcabcabcabc",
    b"the cat sat on the mat. the cat sat on the mat again.",
    bytes(range(256)),
    b"".join(b"key_%d=value_%d;" % (i, i % 9) for i in range(100)),
]


class TestHashPositions:
    def test_length(self):
        hashes = hash_positions(b"abcdefgh", hash_log=12, hash_bytes=4)
        assert len(hashes) == 5

    def test_short_input(self):
        assert len(hash_positions(b"ab", hash_log=12, hash_bytes=4)) == 0

    def test_range(self):
        hashes = hash_positions(b"abcdefgh" * 10, hash_log=8, hash_bytes=4)
        assert hashes.min() >= 0
        assert hashes.max() < 256

    def test_equal_prefixes_collide(self):
        hashes = hash_positions(b"abcdXabcd", hash_log=14, hash_bytes=4)
        assert hashes[0] == hashes[5]

    def test_invalid_hash_bytes(self):
        with pytest.raises(ValueError):
            hash_positions(b"abc", hash_log=10, hash_bytes=5)


@pytest.mark.parametrize("finder,params", _FINDERS, ids=lambda v: getattr(v, "strategy", type(v).__name__))
class TestParses:
    @pytest.mark.parametrize("data", _SAMPLES, ids=range(len(_SAMPLES)))
    def test_parse_is_valid_and_covers_input(self, finder, params, data):
        tokens = finder.parse(data, 0, params)
        assert tokens_cover(tokens) == len(data)
        validate_parse(tokens, data)

    def test_finds_repetition(self, finder, params):
        data = b"0123456789" * 30
        tokens = finder.parse(data, 0, params)
        matched = sum(t.match_length for t in tokens)
        assert matched > len(data) // 2

    def test_no_matches_in_unique_bytes(self, finder, params):
        data = bytes(range(200))
        tokens = finder.parse(data, 0, params)
        assert all(t.match_length == 0 or t.offset > 0 for t in tokens)

    def test_counters_populated(self, finder, params):
        counters = StageCounters()
        finder.parse(b"hello hello hello hello", 0, params, counters)
        assert counters.positions_scanned > 0
        assert counters.hash_probes > 0

    def test_respects_max_offset(self, finder, params):
        from dataclasses import replace

        tight = replace(params, max_offset=8)
        data = b"abcdefgh" + b"X" * 32 + b"abcdefgh"
        tokens = finder.parse(data, 0, tight)
        assert all(t.offset <= 8 for t in tokens)
        validate_parse(tokens, data)

    def test_respects_max_match(self, finder, params):
        from dataclasses import replace

        tight = replace(params, max_match=16)
        data = b"z" * 500
        tokens = finder.parse(data, 0, tight)
        assert all(t.match_length <= 16 for t in tokens)
        validate_parse(tokens, data)

    def test_dictionary_history_is_reachable(self, finder, params):
        history = b"the shared dictionary content here"
        data = history + b"dictionary content"
        tokens = finder.parse(data, len(history), params)
        validate_parse(tokens, data, history_length=len(history))
        # The parse should find the cross-boundary match.
        assert any(t.match_length >= 8 for t in tokens)


class TestStrategyQualityOrdering:
    def test_deeper_search_never_hurts_much(self):
        data = b"".join(
            b"session[%d] = {user: %d, t: %d}\n" % (i, i % 13, i % 7)
            for i in range(200)
        )
        fast = SingleHashMatchFinder().parse(
            data, 0, MatchFinderParams(strategy="fast")
        )
        lazy = HashChainMatchFinder().parse(
            data, 0, MatchFinderParams(strategy="lazy2", search_depth=32, lazy_steps=2)
        )
        # Proxy for coded size: literal bytes plus per-sequence overhead.
        def cost(tokens):
            return sum(t.literal_length for t in tokens) + 3 * len(tokens)

        assert cost(lazy) <= cost(fast)

    def test_acceleration_reduces_work(self):
        data = bytes(range(256)) * 20  # few matches -> miss-heavy scan
        slow_counters = StageCounters()
        fast_counters = StageCounters()
        SingleHashMatchFinder().parse(
            data, 0, MatchFinderParams(strategy="fast", acceleration=1), slow_counters
        )
        SingleHashMatchFinder().parse(
            data, 0, MatchFinderParams(strategy="fast", acceleration=16), fast_counters
        )
        assert fast_counters.positions_scanned < slow_counters.positions_scanned


class TestFinderRegistry:
    @pytest.mark.parametrize("strategy", ["fast", "greedy", "lazy", "lazy2", "optimal"])
    def test_known_strategies(self, strategy):
        assert finder_for_strategy(strategy) is not None

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            finder_for_strategy("btultra-nope")


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=600))
def test_all_strategies_valid_on_random_input(data):
    for finder, params in _FINDERS:
        tokens = finder.parse(data, 0, params)
        assert tokens_cover(tokens) == len(data)
        validate_parse(tokens, data)
