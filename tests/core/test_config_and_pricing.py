"""CompressionConfig, config grids, and the price book."""

import pytest

from repro.core import DEFAULT_PRICES, CompressionConfig, PriceBook
from repro.core.config import config_grid


class TestCompressionConfig:
    def test_valid_config(self):
        config = CompressionConfig("zstd", 3, 65536)
        assert config.label() == "zstd-3@64KB"

    def test_no_block_size_label(self):
        assert CompressionConfig("lz4", 9).label() == "lz4-9"

    def test_odd_block_size_label(self):
        assert CompressionConfig("zstd", 1, 1000).label() == "zstd-1@1000B"

    def test_unknown_algorithm_allowed_for_accelerators(self):
        # pseudo-algorithms are resolved later by the engine
        CompressionConfig("qat-like", 1)

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            CompressionConfig("zlib", 15)

    def test_negative_block_size_rejected(self):
        with pytest.raises(ValueError):
            CompressionConfig("zstd", 3, -1)

    def test_hashable_and_ordered(self):
        configs = {CompressionConfig("zstd", 1), CompressionConfig("zstd", 1)}
        assert len(configs) == 1
        assert CompressionConfig("lz4", 1) < CompressionConfig("zstd", 1)


class TestConfigGrid:
    def test_grid_size(self):
        grid = config_grid(["zstd", "lz4"], levels=[1, 3], block_sizes=[None, 4096])
        assert len(grid) == 8

    def test_grid_skips_invalid_levels(self):
        grid = config_grid(["zlib"], levels=[1, 12])
        assert len(grid) == 1

    def test_grid_defaults_to_all_levels(self):
        grid = config_grid(["zlib"])
        assert len(grid) == 10  # levels 0..9


class TestPriceBook:
    def test_compute_core_second_positive(self):
        assert DEFAULT_PRICES.compute_core_second > 0

    def test_flash_costs_more_than_warm(self):
        assert DEFAULT_PRICES.flash_byte_day > DEFAULT_PRICES.storage_byte_day

    def test_accelerator_cheaper_than_instance(self):
        assert (
            DEFAULT_PRICES.accelerator_second
            < DEFAULT_PRICES.ec2_instance_hourly / 3600
        )

    def test_custom_prices(self):
        book = PriceBook(ec2_instance_hourly=1.0, ec2_instance_vcpus=10)
        assert book.compute_core_second == pytest.approx(1.0 / 10 / 3600)
