"""Ablation: entropy stage (DESIGN.md section 5).

Holds the parse fixed (one lazy hash-chain parse) and swaps the entropy
stage: LZ4's byte-aligned raw encoding vs the Zstd-style Huffman+FSE coder.
Isolates the ratio/decompression-speed axis the paper attributes to the
entropy-encoding stage (Section II-B).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.codecs.base import StageCounters
from repro.codecs.lz4 import block as lz4block
from repro.codecs.matchfinders import MatchFinderParams, finder_for_strategy
from repro.codecs.zstd import blocks as zblocks
from repro.corpus import generate_text
from repro.perfmodel import DEFAULT_MACHINE


@pytest.fixture(scope="module")
def comparison():
    data = generate_text(32768, seed=180)
    params = MatchFinderParams(
        strategy="lazy", search_depth=16, lazy_steps=1,
        min_match=4, max_offset=65535,
    )
    tokens = finder_for_strategy("lazy").parse(data, 0, params)

    out = {}
    # Byte-aligned (LZ4-style) encoding of the identical parse.
    enc_counters = StageCounters(bytes_in=len(data))
    lz4_payload = lz4block.encode_block(data, 0, tokens, enc_counters)
    dec_counters = StageCounters(bytes_in=len(lz4_payload))
    restored = lz4block.decode_block(lz4_payload, dec_counters)
    assert restored == data
    dec_counters.bytes_out = len(restored)
    out["byte-aligned (lz4)"] = (
        len(data) / len(lz4_payload),
        DEFAULT_MACHINE.decompress_speed("lz4", dec_counters) / 1e6,
    )
    # Entropy-coded (zstd-style) encoding of the identical parse.
    enc_counters = StageCounters(bytes_in=len(data))
    zstd_payload = zblocks.encode_block(data, 0, tokens, enc_counters)
    dec_counters = StageCounters(bytes_in=len(zstd_payload))
    restored = zblocks.decode_block(zstd_payload, dec_counters)
    assert restored == data
    dec_counters.bytes_out = len(restored)
    out["huffman+fse (zstd)"] = (
        len(data) / len(zstd_payload),
        DEFAULT_MACHINE.decompress_speed("zstd", dec_counters) / 1e6,
    )
    return out


def test_ablation_entropy(benchmark, comparison, figure_output):
    rows = [
        [name, f"{ratio:.3f}", f"{speed:.0f}"]
        for name, (ratio, speed) in comparison.items()
    ]
    figure_output(
        "ablation_entropy",
        format_table(
            ["entropy stage", "ratio", "decomp MB/s"],
            rows,
            title="Ablation: entropy stage on an identical parse",
        ),
    )
    lz4_ratio, lz4_speed = comparison["byte-aligned (lz4)"]
    zstd_ratio, zstd_speed = comparison["huffman+fse (zstd)"]
    # The paper's trade-off: entropy coding buys ratio, costs decode speed.
    assert zstd_ratio > 1.1 * lz4_ratio
    assert lz4_speed > 1.5 * zstd_speed

    data = generate_text(8192, seed=181)
    params = MatchFinderParams(strategy="lazy", search_depth=16, lazy_steps=1)
    tokens = finder_for_strategy("lazy").parse(data, 0, params)
    benchmark(
        lambda: zblocks.encode_block(data, 0, tokens, StageCounters())
    )
