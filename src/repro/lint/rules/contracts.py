"""Rule family E: codec exception contracts.

The decode boundary promise (docs/resilience.md): no malformed payload
may escape a codec as a low-level exception. Callers -- the cache
server's verified-decompress path, kvstore block reads, the RPC channel
-- catch :class:`repro.codecs.base.CorruptDataError` to quarantine and
recover; an escaping ``IndexError`` or ``struct.error`` would instead
crash the service. :meth:`Compressor.decompress` installs a catch-all
conversion, but hand-rolled decode helpers that catch-and-continue can
still silently swallow corruption into wrong output, which is worse.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.finding import Finding
from repro.lint.rules import Rule, register

#: exception names whose appearance in a decode path means "corrupt input"
_CORRUPTION_EXCEPTIONS = {
    "IndexError", "KeyError", "ValueError", "OverflowError", "EOFError",
    "MemoryError", "error",  # struct.error appears as Attribute(attr='error')
}
#: function names that put a handler on the decode path
_DECODE_CONTEXT = re.compile(r"(decode|decompress|inflate|replay)", re.IGNORECASE)
#: exception types a decode-path handler may legitimately raise
_ALLOWED_RAISE = re.compile(r"(Corrupt|Codec|OutputLimit)")


def _handler_names(handler: ast.ExceptHandler):
    """Exception names a handler catches (flattening tuples)."""
    nodes = []
    if isinstance(handler.type, ast.Tuple):
        nodes = handler.type.elts
    elif handler.type is not None:
        nodes = [handler.type]
    for node in nodes:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _raised_name(node: ast.Raise) -> str:
    """Best-effort name of the exception a raise statement constructs."""
    target = node.exc
    if isinstance(target, ast.Call):
        target = target.func
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return ""  # bare ``raise`` re-raises the low-level exception


@register
class DecodeBoundaryRule(Rule):
    id = "E001"
    title = "codec decode path leaks or swallows corruption exceptions"
    rationale = (
        "Decode helpers in repro/codecs and repro/graphs that catch "
        "IndexError/ValueError/struct.error-class exceptions must convert "
        "them to CorruptDataError (or another CodecError); swallowing turns "
        "corruption into wrong output, re-raising raw crashes the "
        "quarantine/recovery machinery."
    )

    _DECODE_PACKAGES = ("repro/codecs/", "repro/graphs/")

    def is_exempt(self, ctx) -> bool:
        return not any(pkg in ctx.path for pkg in self._DECODE_PACKAGES)

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = [n for n in _handler_names(node) if n in _CORRUPTION_EXCEPTIONS]
            if not caught:
                continue
            function = ctx.enclosing_function(node)
            if function is None or not _DECODE_CONTEXT.search(function):
                continue
            raises = [
                sub for sub in ast.walk(node) if isinstance(sub, ast.Raise)
            ]
            if not raises:
                yield self.finding(
                    ctx,
                    node,
                    f"handler in {function}() swallows {'/'.join(caught)}; "
                    "decode paths must raise CorruptDataError so callers "
                    "can quarantine",
                )
                continue
            bad = [
                _raised_name(sub) or "<bare raise>"
                for sub in raises
                if not _ALLOWED_RAISE.search(_raised_name(sub))
            ]
            if bad:
                yield self.finding(
                    ctx,
                    node,
                    f"handler in {function}() re-raises {'/'.join(sorted(set(bad)))} "
                    f"for caught {'/'.join(caught)}; convert to CorruptDataError "
                    "at the decode boundary",
                )
