"""End-to-end: instrumentation through the service substrates.

The key contract (Fig. 13 fidelity): a kvstore get that misses the block
cache records exactly one block-decode latency observation; a get served
from the cache records zero.
"""

from __future__ import annotations

from repro import obs
from repro.obs.instrument import (
    BLOCK_CACHE,
    BLOCK_DECODE_SECONDS,
    CACHE_REQUESTS,
    CODEC_CALLS,
    CODEC_STAGE_OPS,
    FLEET_SAMPLES,
    RPC_BYTES,
    RPC_MESSAGES,
)
from repro.services.cache import CacheClient, CacheServer
from repro.services.kvstore import KVStore, SSTable
from repro.services.kvstore.blockcache import BlockCache
from repro.services.rpc import Channel


def _entries(n: int):
    return [
        (b"key:%06d" % i, b"value-payload-%06d|" % i * 4) for i in range(n)
    ]


class TestKVStoreBlockDecode:
    def test_miss_records_one_observation_hit_records_none(self, fresh_obs):
        cache = BlockCache(1 << 20)
        table = SSTable.build(
            _entries(200), level=1, block_size=1024,
            bloom_bits_per_key=0, block_cache=cache,
        )
        key = b"key:000042"
        hist = lambda: fresh_obs.get(BLOCK_DECODE_SECONDS)

        found, _, _ = table.get(key)  # cold: decode the block
        assert found
        assert hist().count(algorithm="zstd") == 1

        found, _, _ = table.get(key)  # hot: served from the block cache
        assert found
        assert hist().count(algorithm="zstd") == 1  # unchanged

        probes = fresh_obs.get(BLOCK_CACHE)
        assert probes.value(result="miss") == 1
        assert probes.value(result="hit") == 1

    def test_uncached_store_records_every_decode(self, fresh_obs):
        table = SSTable.build(
            _entries(100), level=1, block_size=1024, bloom_bits_per_key=0
        )
        key = b"key:000007"
        table.get(key)
        table.get(key)
        hist = fresh_obs.get(BLOCK_DECODE_SECONDS)
        assert hist.count(algorithm="zstd") == 2  # no cache: decode both times

    def test_full_store_read_path(self, fresh_obs):
        store = KVStore(
            block_size=1024, memtable_bytes=4 << 10,
            block_cache_bytes=64 << 10, bloom_bits_per_key=0,
        )
        for key, value in _entries(120):
            store.put(key, value)
        store.flush()
        assert store.get(b"key:000003") is not None
        hist = fresh_obs.get(BLOCK_DECODE_SECONDS)
        first = hist.count(algorithm="zstd")
        assert first >= 1
        assert store.get(b"key:000003") is not None  # cached now
        assert hist.count(algorithm="zstd") == first


class TestRpcTelemetry:
    def test_send_emits_codec_and_message_series(self, fresh_obs):
        channel = Channel(level=1)
        payload = b"the quick brown fox jumps over the lazy dog " * 50
        received, _ = channel.send(payload)
        assert received == payload

        calls = fresh_obs.get(CODEC_CALLS)
        assert calls.value(
            algorithm="zstd", direction="compress", level="1"
        ) == 1
        assert calls.value(
            algorithm="zstd", direction="decompress", level="na"
        ) == 1
        stage_ops = fresh_obs.get(CODEC_STAGE_OPS)
        assert stage_ops.value(
            algorithm="zstd", direction="compress", level="1",
            stage="match_finding",
        ) > 0
        assert fresh_obs.get(RPC_MESSAGES).value(algorithm="zstd") == 1
        rpc_bytes = fresh_obs.get(RPC_BYTES)
        assert rpc_bytes.value(algorithm="zstd", kind="raw") == len(payload)
        assert 0 < rpc_bytes.value(algorithm="zstd", kind="wire") < len(payload)
        # the send shows up as a flame path with the codec attribute
        assert any(path == "rpc.send" for path in obs.flame_counts())

    def test_disabled_channel_records_nothing(self):
        obs.reset()
        obs.disable()
        Channel(level=1).send(b"payload " * 100)
        assert obs.get_registry().get(CODEC_CALLS) is None
        assert obs.get_registry().get(RPC_MESSAGES) is None


class TestCacheTelemetry:
    def test_server_and_client_ops_counted(self, fresh_obs):
        server = CacheServer(level=1)
        client = CacheClient(server)
        server.set(b"k1", "t", b"value " * 64)
        assert client.get(b"k1") is not None
        assert client.get(b"absent") is None
        requests = fresh_obs.get(CACHE_REQUESTS)
        assert requests.value(op="set", result="stored") == 1
        assert requests.value(op="get", result="hit") == 1
        assert requests.value(op="get", result="miss") == 1
        assert requests.value(op="client_get", result="hit") == 1
        assert requests.value(op="client_get", result="miss") == 1


class TestFleetTelemetry:
    def test_profiler_run_emits_leaf_counters(self, fresh_obs):
        from repro.fleet import SamplingProfiler

        samples = SamplingProfiler(samples_per_day=2000, seed=3).run(days=1)
        leaves = fresh_obs.get(FLEET_SAMPLES)
        recorded = leaves.total()
        assert recorded == sum(s.weight for s in samples) == 2000
        # the (algorithm, direction, level, stage) key survives end to end
        assert any(
            dict(key).get("stage") == "match_finding"
            for key in leaves.label_keys()
        )
