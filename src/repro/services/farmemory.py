"""Far memory: proactive compression of cold pages.

The paper's introduction lists reducing "the memory total cost of ownership
(TCO) by proactively compressing cold memory pages" among the fleet's
compression uses, citing zswap-style software-defined far memory and TMO.
This substrate models that path: a pool of 4 KB pages with access-recency
tracking; pages cold for longer than a threshold are compressed into a
compact pool, and touching a compressed page incurs a decompression fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.codecs import Compressor, get_codec
from repro.codecs.base import CodecError, StageCounters
from repro.perfmodel import DEFAULT_MACHINE, MachineModel
from repro.resilience.breaker import CircuitBreaker

PAGE_SIZE = 4096


class PageLostError(RuntimeError):
    """A compressed page could not be decoded back; its data is gone.

    Carries ``page_number``; the page has been dropped from the pool, so
    the owner's recovery is to reconstruct the page from its source of
    truth and :meth:`FarMemoryPool.write` it again.
    """

    def __init__(self, page_number: int, reason: str = "") -> None:
        super().__init__(
            f"page {page_number} lost to corruption"
            + (f" ({reason})" if reason else "")
        )
        self.page_number = page_number


@dataclass
class FarMemoryStats:
    """Accounting for one pool."""

    pages_written: int = 0
    pages_compressed: int = 0
    pages_faulted: int = 0
    incompressible_pages: int = 0
    compress_counters: StageCounters = field(default_factory=StageCounters)
    decompress_counters: StageCounters = field(default_factory=StageCounters)
    fault_seconds_total: float = 0.0
    # -- resilience accounting --
    #: reclaim-pass compressions skipped because the breaker was open
    compression_skips: int = 0
    #: reclaim-pass compressions that raised (page stayed resident)
    compress_failures: int = 0
    #: fault-path decodes that needed the one transient retry
    decode_retries: int = 0
    #: pages dropped because their compressed image would not decode
    pages_lost: int = 0

    @property
    def mean_fault_seconds(self) -> float:
        if not self.pages_faulted:
            return 0.0
        return self.fault_seconds_total / self.pages_faulted


@dataclass
class _Page:
    data: Optional[bytes]  # resident plaintext, or None when compressed
    compressed: Optional[bytes]
    last_access_tick: int


class FarMemoryPool:
    """A page pool with a cold-age compression policy.

    Time is a logical tick advanced by :meth:`tick`; a reclaim pass
    compresses every page untouched for ``cold_age_ticks``. Pages that do
    not compress (high-entropy contents) stay resident, as zswap's
    same-filled/incompressible handling does.
    """

    def __init__(
        self,
        codec: Optional[Compressor] = None,
        level: int = 1,
        cold_age_ticks: int = 4,
        min_saving: float = 0.10,
        machine: MachineModel = DEFAULT_MACHINE,
        breaker: Optional[CircuitBreaker] = None,
        tick_seconds: float = 1.0,
    ) -> None:
        self.codec = codec if codec is not None else get_codec("zstd")
        self.level = level
        self.cold_age_ticks = cold_age_ticks
        self.min_saving = min_saving
        self.machine = machine
        #: trips reclaim-pass compression to "leave pages resident" when
        #: the codec keeps failing; its clock advances tick_seconds/tick
        self.breaker = breaker
        self.tick_seconds = tick_seconds
        self._pages: Dict[int, _Page] = {}
        self._tick = 0
        self.stats = FarMemoryStats()

    # -- time ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance logical time and run one reclaim pass."""
        self._tick += 1
        if self.breaker is not None:
            self.breaker.clock.advance(self.tick_seconds)
        self._reclaim()

    @property
    def now(self) -> int:
        return self._tick

    # -- page operations ----------------------------------------------------------

    def write(self, page_number: int, data: bytes) -> None:
        """Install or overwrite one page (pads/truncates to PAGE_SIZE)."""
        page_data = bytes(data[:PAGE_SIZE]).ljust(PAGE_SIZE, b"\x00")
        self._pages[page_number] = _Page(
            data=page_data, compressed=None, last_access_tick=self._tick
        )
        self.stats.pages_written += 1

    def read(self, page_number: int) -> bytes:
        """Touch one page; faults it back in if it was compressed.

        The fault path is verified-decompress with one transient retry; a
        page whose compressed image will not decode is dropped and
        reported as :class:`PageLostError` (the owner rebuilds it from the
        source of truth), never an unhandled codec exception.
        """
        page = self._pages[page_number]
        page.last_access_tick = self._tick
        if page.data is not None:
            return page.data
        try:
            result = self.codec.decompress(page.compressed)
        except CodecError:
            self.stats.decode_retries += 1
            try:
                result = self.codec.decompress(page.compressed)
            except CodecError as exc:
                self.stats.pages_lost += 1
                del self._pages[page_number]
                raise PageLostError(page_number, str(exc)) from exc
        self.stats.decompress_counters.merge(result.counters)
        fault_seconds = self.machine.decompress_seconds(
            self.codec.name, result.counters
        )
        self.stats.pages_faulted += 1
        self.stats.fault_seconds_total += fault_seconds
        page.data = result.data
        page.compressed = None
        return page.data

    def _reclaim(self) -> None:
        for page in self._pages.values():
            if page.data is None:
                continue
            if self._tick - page.last_access_tick < self.cold_age_ticks:
                continue
            if self.breaker is not None and not self.breaker.allow():
                self.stats.compression_skips += 1
                page.last_access_tick = self._tick
                continue
            try:
                result = self.codec.compress(page.data, self.level)
            except CodecError:
                self.stats.compress_failures += 1
                if self.breaker is not None:
                    self.breaker.record_failure()
                # page stays resident; retried after it goes cold again
                page.last_access_tick = self._tick
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            self.stats.compress_counters.merge(result.counters)
            if len(result.data) > PAGE_SIZE * (1 - self.min_saving):
                self.stats.incompressible_pages += 1
                # leave resident; re-checking every pass would waste cycles,
                # so push the page's clock forward instead
                page.last_access_tick = self._tick
                continue
            page.compressed = result.data
            page.data = None
            self.stats.pages_compressed += 1

    # -- accounting ----------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Plaintext bytes currently occupying DRAM."""
        return sum(PAGE_SIZE for p in self._pages.values() if p.data is not None)

    @property
    def compressed_bytes(self) -> int:
        """Bytes in the compressed pool."""
        return sum(
            len(p.compressed) for p in self._pages.values() if p.compressed is not None
        )

    @property
    def memory_saving(self) -> float:
        """Fraction of the pool's footprint eliminated by compression."""
        total_pages = len(self._pages)
        if not total_pages:
            return 0.0
        uncompressed = total_pages * PAGE_SIZE
        actual = self.resident_bytes + self.compressed_bytes
        return 1.0 - actual / uncompressed

    def __len__(self) -> int:
        return len(self._pages)
