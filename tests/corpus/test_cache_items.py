"""Cache item generator tests: size skew and per-type redundancy."""

import json

import pytest

from repro.analysis import summarize_sizes
from repro.codecs import get_codec, train_dictionary
from repro.corpus import CACHE1_TYPES, CACHE2_TYPES, generate_cache_items


class TestItemGeneration:
    def test_count_respected(self):
        items = generate_cache_items(CACHE1_TYPES, 200, seed=1)
        assert len(items) == 200

    def test_types_come_from_spec(self):
        items = generate_cache_items(CACHE1_TYPES, 100, seed=1)
        names = {spec.name for spec in CACHE1_TYPES}
        assert all(t in names for t, __ in items)

    def test_deterministic(self):
        a = generate_cache_items(CACHE2_TYPES, 50, seed=9)
        b = generate_cache_items(CACHE2_TYPES, 50, seed=9)
        assert a == b

    def test_payloads_are_valid_json(self):
        items = generate_cache_items(CACHE1_TYPES, 30, seed=2)
        for __, payload in items:
            assert json.loads(payload)["schema_version"] == 12


class TestSizeDistribution:
    """Figs 8-9: strongly skewed to <1KB with a long tail."""

    @pytest.mark.parametrize("specs", [CACHE1_TYPES, CACHE2_TYPES], ids=["cache1", "cache2"])
    def test_majority_below_1kb(self, specs):
        items = generate_cache_items(specs, 600, seed=3)
        summary = summarize_sizes([len(p) for __, p in items])
        assert summary["below_1kb"] > 0.5

    @pytest.mark.parametrize("specs", [CACHE1_TYPES, CACHE2_TYPES], ids=["cache1", "cache2"])
    def test_long_tail_exists(self, specs):
        items = generate_cache_items(specs, 600, seed=3)
        sizes = [len(p) for __, p in items]
        summary = summarize_sizes(sizes)
        assert summary["p99"] > 4 * summary["p50"]

    def test_cache2_items_smaller_than_cache1(self):
        c1 = generate_cache_items(CACHE1_TYPES, 400, seed=4)
        c2 = generate_cache_items(CACHE2_TYPES, 400, seed=4)
        median1 = summarize_sizes([len(p) for __, p in c1])["p50"]
        median2 = summarize_sizes([len(p) for __, p in c2])["p50"]
        assert median2 < median1


class TestPerTypeRedundancy:
    def test_dictionary_helps_every_type(self):
        """The property Fig. 10/11 relies on: typed items share structure."""
        zstd = get_codec("zstd")
        items = generate_cache_items(CACHE1_TYPES, 400, seed=5)
        by_type = {}
        for type_name, payload in items:
            by_type.setdefault(type_name, []).append(payload)
        for type_name, payloads in by_type.items():
            if len(payloads) < 20:
                continue
            train, test = payloads[:-10], payloads[-10:]
            dictionary = train_dictionary(train, max_size=4096)
            plain = sum(len(zstd.compress(p, 3).data) for p in test)
            dicted = sum(
                len(zstd.compress(p, 3, dictionary=dictionary.content).data)
                for p in test
            )
            assert dicted < plain, type_name
