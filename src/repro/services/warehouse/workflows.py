"""The four warehouse workflows of Section IV-B (DW1-DW4).

Every workflow returns a :class:`WorkflowReport` attributing modeled cycles
to compression, decompression, and the workflow's own business logic, which
is how Figs 6 and 7 (cycle shares and the match-finding/entropy split) are
regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.codecs import get_codec
from repro.codecs.base import StageCounters
from repro.perfmodel import DEFAULT_MACHINE, MachineModel
from repro.services.warehouse.orc import ColumnValues, OrcReader, OrcWriter


@dataclass
class WorkflowReport:
    """Cycle attribution for one workflow run."""

    name: str
    compress_cycles: float = 0.0
    decompress_cycles: float = 0.0
    other_cycles: float = 0.0
    match_finding_cycles: float = 0.0
    entropy_cycles: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    compress_counters: StageCounters = field(default_factory=StageCounters)
    decompress_counters: StageCounters = field(default_factory=StageCounters)

    @property
    def total_cycles(self) -> float:
        return self.compress_cycles + self.decompress_cycles + self.other_cycles

    @property
    def zstd_share(self) -> float:
        """Fraction of total cycles in (de)compression -- Fig. 6's metric."""
        total = self.total_cycles
        return (self.compress_cycles + self.decompress_cycles) / total if total else 0.0

    @property
    def compress_share(self) -> float:
        total = self.total_cycles
        return self.compress_cycles / total if total else 0.0

    @property
    def decompress_share(self) -> float:
        total = self.total_cycles
        return self.decompress_cycles / total if total else 0.0

    @property
    def match_finding_share_of_compression(self) -> float:
        """Share of compression cycles spent match finding -- Fig. 7's split."""
        if self.compress_cycles <= 0:
            return 0.0
        return self.match_finding_cycles / self.compress_cycles


class _WarehouseJob:
    """Shared plumbing: codec, machine model, cycle attribution."""

    #: modeled non-compression work per byte touched by the job
    business_cycles_per_byte = 5.0
    #: Zstd level this workflow uses (Section IV-B)
    compression_level = 1

    def __init__(
        self,
        machine: MachineModel = DEFAULT_MACHINE,
        level: Optional[int] = None,
    ) -> None:
        self.machine = machine
        self.codec = get_codec("zstd")
        if level is not None:
            self.compression_level = level

    def _writer(self) -> OrcWriter:
        return OrcWriter(codec=self.codec, level=self.compression_level)

    def _reader(self) -> OrcReader:
        return OrcReader(codec=self.codec)

    def _account_write(self, report: WorkflowReport, writer: OrcWriter, payload: bytes) -> None:
        breakdown = self.machine.compress_breakdown(
            self.codec.name, writer.stats.compress_counters
        )
        report.compress_cycles += breakdown.match_finding + breakdown.entropy + breakdown.overhead
        report.match_finding_cycles += breakdown.match_finding
        report.entropy_cycles += breakdown.entropy
        report.bytes_written += len(payload)
        report.compress_counters.merge(writer.stats.compress_counters)

    def _account_read(self, report: WorkflowReport, reader: OrcReader, payload: bytes) -> None:
        report.decompress_cycles += self.machine.decompress_cycles(
            self.codec.name, reader.stats.decompress_counters
        )
        report.bytes_read += len(payload)
        report.decompress_counters.merge(reader.stats.decompress_counters)

    def _account_business(self, report: WorkflowReport, bytes_touched: int) -> None:
        report.other_cycles += self.business_cycles_per_byte * bytes_touched


class IngestionJob(_WarehouseJob):
    """DW1: reads source data, encodes ORC, compresses at Zstd level 7.

    "The data is destined for long-term storage, so a high compression ratio
    is favored over a high compression speed."
    """

    compression_level = 7
    business_cycles_per_byte = 10.9

    def run(self, table: Dict[str, ColumnValues]) -> "IngestionResult":
        report = WorkflowReport("DW1")
        raw_size = _table_bytes(table)
        self._account_business(report, raw_size)  # parse + ORC encode
        writer = self._writer()
        payload = writer.write(table)
        self._account_write(report, writer, payload)
        return IngestionResult(payload=payload, report=report)


@dataclass
class IngestionResult:
    payload: bytes
    report: WorkflowReport


class ShuffleJob(_WarehouseJob):
    """DW2: reads input, splits rows by destination worker, writes level 1."""

    compression_level = 1
    business_cycles_per_byte = 10.2

    def run(self, payload: bytes, partitions: int = 4) -> "ShuffleResult":
        report = WorkflowReport("DW2")
        reader = self._reader()
        table = reader.read(payload)
        self._account_read(report, reader, payload)
        row_count = len(next(iter(table.values())))
        self._account_business(report, _table_bytes(table))
        outputs: List[bytes] = []
        for part in range(partitions):
            rows = [i for i in range(row_count) if i % partitions == part]
            partition = {name: _take(values, rows) for name, values in table.items()}
            writer = self._writer()
            out = writer.write(partition)
            self._account_write(report, writer, out)
            outputs.append(out)
        return ShuffleResult(partitions=outputs, report=report)


@dataclass
class ShuffleResult:
    partitions: List[bytes]
    report: WorkflowReport


class SparkJob(_WarehouseJob):
    """DW3: reads input, computes, writes results back (level 1)."""

    compression_level = 1
    business_cycles_per_byte = 3.2

    def run(self, payload: bytes) -> "SparkResult":
        report = WorkflowReport("DW3")
        reader = self._reader()
        table = reader.read(payload)
        self._account_read(report, reader, payload)
        self._account_business(report, 2 * _table_bytes(table))  # the computation
        # Aggregate: keep a coarse per-column summary table as the "result".
        summary = _aggregate(table)
        writer = self._writer()
        out = writer.write(summary)
        self._account_write(report, writer, out)
        return SparkResult(output=out, report=report)


@dataclass
class SparkResult:
    output: bytes
    report: WorkflowReport


class MLDataJob(_WarehouseJob):
    """DW4: consumes warehouse data as model input (level 1 both ways)."""

    compression_level = 1
    business_cycles_per_byte = 14.0

    def run(self, payload: bytes) -> "MLDataResult":
        report = WorkflowReport("DW4")
        reader = self._reader()
        table = reader.read(payload)
        self._account_read(report, reader, payload)
        self._account_business(report, 3 * _table_bytes(table))  # featurization
        writer = self._writer()
        out = writer.write(table)  # re-written as training shards
        self._account_write(report, writer, out)
        return MLDataResult(shard=out, report=report)


@dataclass
class MLDataResult:
    shard: bytes
    report: WorkflowReport


# -- helpers -------------------------------------------------------------------


def _table_bytes(table: Dict[str, ColumnValues]) -> int:
    total = 0
    for values in table.values():
        if isinstance(values, list):
            total += sum(len(v) for v in values)
        else:
            total += values.nbytes
    return total


def _take(values: ColumnValues, rows: List[int]) -> ColumnValues:
    if isinstance(values, list):
        return [values[i] for i in rows]
    return values[rows]


def _aggregate(table: Dict[str, ColumnValues]) -> Dict[str, ColumnValues]:
    """Per-column summary statistics as an aligned two-column table."""
    import numpy as np

    stat_names: List[str] = []
    stat_values: List[float] = []
    for name, values in table.items():
        if isinstance(values, list):
            stat_names.append(f"{name}_cardinality")
            stat_values.append(float(len(set(values))))
        elif values.dtype == np.bool_:
            stat_names.append(f"{name}_true_count")
            stat_values.append(float(values.sum()))
        else:
            stat_names.append(f"{name}_mean")
            stat_values.append(float(np.asarray(values, dtype=np.float64).mean()))
    return {
        "stat": stat_names,
        "value": np.array(stat_values, dtype=np.float64),
    }
