"""The machine model: per-operation cycle costs and throughput conversion."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.codecs.base import StageCounters

#: nominal datacenter-core clock, Hz
DEFAULT_FREQUENCY_HZ = 3.0e9


@dataclass(frozen=True)
class CostCoefficients:
    """Cycle costs per counted operation for one codec family.

    Compression-side coefficients are split between the two pipeline stages
    so Fig. 7's match-finding vs entropy attribution can be computed.
    """

    # -- match-finding stage --
    scan: float = 1.2
    probe: float = 1.6
    candidate: float = 3.0
    compare_byte: float = 0.15
    sequence: float = 6.0
    literal: float = 0.6
    setup_entry: float = 0.12
    # -- entropy stage --
    entropy_symbol: float = 4.0
    entropy_bit: float = 0.02
    table_build: float = 1800.0
    # -- per-call / per-byte base costs --
    call_overhead: float = 1500.0
    byte_in: float = 0.8
    # -- decode side --
    decode_sequence: float = 9.0
    decode_literal_byte: float = 0.35
    decode_match_byte: float = 0.45
    decode_entropy_symbol: float = 4.5
    decode_byte_out: float = 0.25
    decode_call_overhead: float = 600.0
    # -- structural transform stage (graph codecs; zero for flat codecs) --
    #: cycles per byte moved through an invertible restructuring transform
    #: (byte-plane transpose, delta, tokenize) -- vectorizable shuffles
    transform_byte: float = 0.0


#: Calibrated per-codec coefficients. Anchors (3 GHz core, lzbench-style
#: published numbers): lz4 ~750 MB/s compress / ~4.5 GB/s decompress;
#: zstd-1 ~500 MB/s / ~1.6 GB/s; zlib-6 ~40 MB/s / ~400 MB/s.
CODEC_COEFFICIENTS: Dict[str, CostCoefficients] = {
    # LZ4: no entropy stage; token emission is nearly free, decode is a
    # branchy memcpy loop.
    "lz4": CostCoefficients(
        scan=1.9,
        probe=2.3,
        candidate=4.2,
        compare_byte=0.23,
        sequence=5.7,
        literal=0.5,
        entropy_symbol=1.9,
        entropy_bit=0.0,
        table_build=0.0,
        call_overhead=900.0,
        byte_in=0.95,
        decode_sequence=5.0,
        decode_literal_byte=0.12,
        decode_match_byte=0.18,
        decode_entropy_symbol=0.0,
        decode_byte_out=0.08,
        decode_call_overhead=400.0,
    ),
    # Zstd: Huffman literals + FSE sequences; decode pays roughly one
    # entropy symbol per literal byte.
    "zstd": CostCoefficients(
        scan=1.6,
        probe=2.1,
        candidate=3.9,
        compare_byte=0.2,
        sequence=7.8,
        literal=0.65,
        entropy_symbol=4.5,
        entropy_bit=0.026,
        table_build=1800.0,
        call_overhead=1500.0,
        byte_in=0.9,
        decode_sequence=6.5,
        decode_literal_byte=0.24,
        decode_match_byte=0.32,
        decode_entropy_symbol=2.4,
        decode_byte_out=0.16,
        decode_call_overhead=700.0,
    ),
    # zlib: bit-serial Huffman on every symbol, old-style three-byte hash.
    "zlib": CostCoefficients(
        scan=5.5,
        probe=6.6,
        candidate=11.0,
        compare_byte=0.66,
        sequence=19.8,
        literal=2.6,
        entropy_symbol=19.8,
        entropy_bit=0.11,
        table_build=5000.0,
        call_overhead=2000.0,
        byte_in=3.3,
        decode_sequence=25.0,
        decode_literal_byte=1.7,
        decode_match_byte=1.9,
        decode_entropy_symbol=13.5,
        decode_byte_out=0.85,
        decode_call_overhead=900.0,
    ),
}


# The gzip container shares the DEFLATE engine, so it shares zlib's costs.
CODEC_COEFFICIENTS["gzip"] = CODEC_COEFFICIENTS["zlib"]

# Graph codecs (repro.graphs): the entropy leaves carry zstd/lz4-style
# stage counters, so the leaf work reuses zstd's calibration; the extra
# ``transform_bytes`` counter prices the restructuring stage at roughly
# one cycle per byte -- the cost of a cache-friendly byte shuffle.
CODEC_COEFFICIENTS["graph"] = CostCoefficients(
    scan=1.6,
    probe=2.1,
    candidate=3.9,
    compare_byte=0.2,
    sequence=7.8,
    literal=0.65,
    entropy_symbol=4.5,
    entropy_bit=0.026,
    table_build=1800.0,
    call_overhead=2400.0,
    byte_in=0.9,
    decode_sequence=6.5,
    decode_literal_byte=0.24,
    decode_match_byte=0.32,
    decode_entropy_symbol=2.4,
    decode_byte_out=0.16,
    decode_call_overhead=1100.0,
    transform_byte=0.9,
)


@dataclass(frozen=True)
class StageBreakdown:
    """Cycles attributed to each pipeline stage of one call."""

    match_finding: float
    entropy: float
    overhead: float

    @property
    def total(self) -> float:
        return self.match_finding + self.entropy + self.overhead

    @property
    def match_finding_share(self) -> float:
        """Fraction of cycles in the match-finding stage (Fig. 7's split)."""
        return self.match_finding / self.total if self.total else 0.0


@dataclass(frozen=True)
class MachineModel:
    """Converts stage counters into cycles and throughput on a nominal core."""

    frequency_hz: float = DEFAULT_FREQUENCY_HZ
    coefficients: Dict[str, CostCoefficients] = field(
        default_factory=lambda: dict(CODEC_COEFFICIENTS)
    )

    def _coeffs(self, codec: str) -> CostCoefficients:
        if codec not in self.coefficients and codec.startswith("graph:"):
            # every named graph prices through the shared graph family
            return self.coefficients.get("graph", CostCoefficients())
        return self.coefficients.get(codec, CostCoefficients())

    def compress_breakdown(self, codec: str, c: StageCounters) -> StageBreakdown:
        """Cycle breakdown of one compression call."""
        k = self._coeffs(codec)
        match_finding = (
            k.scan * c.positions_scanned
            + k.probe * c.hash_probes
            + k.candidate * c.match_candidates
            + k.compare_byte * c.match_bytes_compared
            + k.sequence * c.sequences_emitted
            + k.literal * c.literals_emitted
            + k.setup_entry * c.setup_entries
        )
        entropy = (
            k.entropy_symbol * c.entropy_symbols
            + k.entropy_bit * c.entropy_bits
            + k.table_build * c.table_builds
        )
        overhead = (
            k.call_overhead
            + k.byte_in * c.bytes_in
            + k.transform_byte * c.transform_bytes
        )
        return StageBreakdown(match_finding, entropy, overhead)

    def compress_cycles(self, codec: str, counters: StageCounters) -> float:
        return self.compress_breakdown(codec, counters).total

    def decompress_cycles(self, codec: str, c: StageCounters) -> float:
        k = self._coeffs(codec)
        return (
            k.decode_sequence * c.sequences_decoded
            + k.decode_literal_byte * c.literal_bytes_copied
            + k.decode_match_byte * c.match_bytes_copied
            + k.decode_entropy_symbol * c.entropy_symbols_decoded
            + k.decode_byte_out * c.bytes_out
            + k.transform_byte * c.transform_bytes
            + k.decode_call_overhead
        )

    # -- throughput helpers -------------------------------------------------

    def compress_speed(self, codec: str, counters: StageCounters) -> float:
        """Modeled compression speed in bytes/second (input bytes)."""
        cycles = self.compress_cycles(codec, counters)
        if cycles <= 0:
            return float("inf")
        return counters.bytes_in * self.frequency_hz / cycles

    def decompress_speed(self, codec: str, counters: StageCounters) -> float:
        """Modeled decompression speed in bytes/second (output bytes)."""
        cycles = self.decompress_cycles(codec, counters)
        if cycles <= 0:
            return float("inf")
        return counters.bytes_out * self.frequency_hz / cycles

    def compress_seconds(self, codec: str, counters: StageCounters) -> float:
        return self.compress_cycles(codec, counters) / self.frequency_hz

    def decompress_seconds(self, codec: str, counters: StageCounters) -> float:
        return self.decompress_cycles(codec, counters) / self.frequency_hz


DEFAULT_MACHINE = MachineModel()
