"""Benchmark harness plumbing.

Every ``bench_*`` module regenerates one table or figure from the paper:
it prints (and writes under ``benchmarks/results/``) the same rows or
series the paper reports, and registers one pytest-benchmark kernel for
the representative operation behind that figure.

Run with::

    pytest benchmarks/ --benchmark-only

Figure outputs land in ``benchmarks/results/<figure>.txt`` regardless of
output capture, so the run doubles as the EXPERIMENTS.md data source.
"""

from __future__ import annotations

import pathlib

import pytest

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def figure_output():
    """Writer: figure_output(name, text) prints and persists figure data."""
    _RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def write(name: str, text: str) -> None:
        path = _RESULTS_DIR / f"{name}.txt"
        if not text.endswith("\n"):
            text += "\n"
        path.write_text(text)
        print(f"\n=== {name} ===\n{text}")

    return write
