"""Fig. 1: ratio and speed for Zstd/Zlib/LZ4, levels 1-9, Silesia-like files.

Paper shape: order-of-magnitude spread in ratio and speed across file
types; for every file, level up => ratio up, compression speed down; LZ4
fastest / zlib slowest at comparable levels.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.codecs import get_codec
from repro.corpus import silesia_like_corpus
from repro.perfmodel import DEFAULT_MACHINE

_FILE_SIZE = 1 << 14
_LEVELS = [1, 3, 5, 7, 9]


@pytest.fixture(scope="module")
def corpus():
    return silesia_like_corpus(_FILE_SIZE, seed=2023)


def test_fig01_series(benchmark, corpus, figure_output):
    from repro.analysis import ascii_scatter

    rows = []
    scatter = {}
    for codec_name in ("zstd", "zlib", "lz4"):
        codec = get_codec(codec_name)
        for file_name, data in corpus.items():
            points = []
            for level in _LEVELS:
                if not codec.min_level <= level <= codec.max_level:
                    continue
                result = codec.compress(data, level)
                decoded = codec.decompress(result.data)
                speed = DEFAULT_MACHINE.compress_speed(codec_name, result.counters)
                points.append((speed / 1e6, result.ratio))
                rows.append(
                    [
                        codec_name,
                        file_name,
                        level,
                        f"{result.ratio:.2f}",
                        f"{speed / 1e6:.0f}",
                        f"{DEFAULT_MACHINE.decompress_speed(codec_name, decoded.counters) / 1e6:.0f}",
                    ]
                )
            if file_name == "dickens-like":
                scatter[codec_name] = points
    figure_output(
        "fig01_silesia",
        format_table(
            ["codec", "file", "level", "ratio", "comp MB/s", "decomp MB/s"],
            rows,
            title="Fig. 1: compression ratio and speed across Silesia-like files",
        )
        + "\n\n"
        + ascii_scatter(
            scatter,
            x_label="compression MB/s",
            y_label="ratio",
            log_x=True,
            width=56,
            height=14,
        )
        + "\n (dickens-like file; levels trace each codec's curve right-to-left)",
    )

    # Benchmark kernel: zstd-3 on the text file (the figure's center point).
    zstd = get_codec("zstd")
    data = corpus["dickens-like"]
    benchmark(lambda: zstd.compress(data, 3))
