"""Rule family O: the zero-cost-when-disabled instrumentation contract.

:mod:`repro.obs.instrument`'s module docstring states the hot-path
deal: *callers* own the enabled check --

    if OBS_STATE.enabled:
        record_codec_call(...)

-- so a disabled process pays one attribute read and a branch per
event, which is what `bench_obs_overhead.py` certifies with its 5%
guard and raising-stub audit. An unguarded ``record_*`` call silently
re-introduces registry work (label-dict construction, histogram
bucketing) on every operation of every un-instrumented run.

The window-metric hooks (:mod:`repro.serving.slos`) follow the sibling
pattern guarded on the recorder argument::

    if self.recorder is not None:
        record_window_verdict(...)

O001 accepts either guard shape, a hoisted flag (``obs_on =
OBS_STATE.enabled`` ... ``if obs_on:``), or a conditional expression
with the same tests.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.finding import Finding
from repro.lint.rules import Rule, register

#: modules whose ``record_*`` exports are hot-path hooks
_HOOK_MODULES = ("repro.obs.", "repro.serving.slos")
#: the obs plane itself (and the window-hook module) define the hooks;
#: tests drive recorders directly and are not hot paths
_EXEMPT_PATHS = ("repro/obs/", "repro/serving/slos.py", "repro/lint/", "tests/")


def _guard_test_qualifies(test: ast.AST) -> bool:
    """Does an ``if`` test look like an enabled/recorder guard?"""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr in ("enabled", "recorder"):
            return True
        if isinstance(node, ast.Name) and (
            "enabled" in node.id or "obs_on" in node.id or node.id == "recorder"
        ):
            return True
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.IsNot, ast.NotEq)) for op in node.ops
        ):
            # ``x is not None`` / ``x != None`` recorder-style guards
            return True
    return False


@register
class UnguardedInstrumentationRule(Rule):
    id = "O001"
    title = "instrumentation call without an enabled/recorder guard"
    rationale = (
        "record_* hooks do registry work (label dicts, histogram bucketing) "
        "on every call; the zero-cost-when-disabled contract requires every "
        "call site to sit behind 'if OBS_STATE.enabled:' or an "
        "'if recorder is not None:' guard (bench_obs_overhead.py audits this "
        "with a raising stub)."
    )

    def is_exempt(self, ctx) -> bool:
        return any(part in ctx.path for part in _EXEMPT_PATHS)

    def check(self, ctx) -> Iterator[Finding]:
        hooks = {
            name
            for name, module in ctx.from_imports.items()
            if name.startswith("record_")
            and (
                module.startswith("repro.obs.")
                or module in ("repro.obs", "repro.serving.slos")
            )
        }
        if not hooks:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Name) and node.func.id in hooks):
                continue
            if self._is_guarded(ctx, node):
                continue
            yield self.finding(
                ctx,
                node,
                f"{node.func.id}() is not behind an enabled/recorder guard; "
                "wrap in 'if OBS_STATE.enabled:' (or suppress with a "
                "justification naming the caller-side guard)",
            )

    def _is_guarded(self, ctx, node: ast.Call) -> bool:
        current: ast.AST = node
        for ancestor, field_name in ctx.ancestors(node):
            if isinstance(ancestor, ast.If) and field_name == "body":
                if _guard_test_qualifies(ancestor.test):
                    return True
            if isinstance(ancestor, ast.IfExp) and field_name == "body":
                if _guard_test_qualifies(ancestor.test):
                    return True
            current = ancestor
        return False
