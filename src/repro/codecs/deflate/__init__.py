"""DEFLATE/zlib codec.

A genuine RFC 1951 DEFLATE implementation (stored, fixed-Huffman, and
dynamic-Huffman blocks) wrapped in the RFC 1950 zlib container with an
Adler-32 checksum. The bit stream is byte-compatible with the reference
zlib library, which the test suite exploits by round-tripping against
``import zlib`` as an independent oracle.

The paper groups Zlib with the "non-LZ" compressors only in the sense that
it predates the modern LZ4/Zstd family; structurally it is LZ77 + Huffman,
and it is kept in Meta's fleet for backward compatibility (Section II-B).
"""

from repro.codecs.deflate.codec import GzipCompressor, ZlibCompressor

__all__ = ["ZlibCompressor", "GzipCompressor"]
