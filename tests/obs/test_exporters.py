"""Exporters: Prometheus text format, JSON lines, table rendering."""

from __future__ import annotations

import json

from repro.obs.export import to_jsonl, to_prometheus, to_table
from repro.obs.metrics import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_codec_calls_total", help="codec API calls").inc(
        7, algorithm="zstd", direction="compress", level="3"
    )
    reg.gauge("repro_resident_bytes").set(4096, shard="0")
    lat = reg.histogram("repro_decode_seconds", help="decode latency")
    for v in (0.001, 0.002, 0.004, 0.032):
        lat.observe(v, algorithm="zstd")
    return reg


class TestPrometheus:
    def test_type_and_help_lines(self):
        text = to_prometheus(_sample_registry())
        assert "# TYPE repro_codec_calls_total counter" in text
        assert "# HELP repro_codec_calls_total codec API calls" in text
        assert "# TYPE repro_resident_bytes gauge" in text
        assert "# TYPE repro_decode_seconds histogram" in text

    def test_counter_sample_with_sorted_labels(self):
        text = to_prometheus(_sample_registry())
        assert (
            'repro_codec_calls_total{algorithm="zstd",direction="compress",'
            'level="3"} 7' in text
        )

    def test_histogram_buckets_cumulative_and_terminated(self):
        text = to_prometheus(_sample_registry())
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_decode_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert bucket_lines[-1].startswith(
            'repro_decode_seconds_bucket{algorithm="zstd",le="+Inf"}'
        )
        assert counts[-1] == 4
        assert 'repro_decode_seconds_count{algorithm="zstd"} 4' in text
        assert 'repro_decode_seconds_sum{algorithm="zstd"} 0.039' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1, path='a"b\\c\nd')
        text = to_prometheus(reg)
        assert 'path="a\\"b\\\\c\\nd"' in text


class TestJsonl:
    def test_every_line_parses_and_carries_labels(self):
        lines = to_jsonl(_sample_registry()).strip().splitlines()
        entries = [json.loads(line) for line in lines]
        assert len(entries) == 3
        by_name = {e["metric"]: e for e in entries}
        counter = by_name["repro_codec_calls_total"]
        assert counter["kind"] == "counter"
        assert counter["value"] == 7
        assert counter["labels"] == {
            "algorithm": "zstd", "direction": "compress", "level": "3"
        }
        hist = by_name["repro_decode_seconds"]
        assert hist["count"] == 4
        assert hist["min"] == 0.001
        assert hist["max"] == 0.032
        assert {"p50", "p90", "p99"} <= set(hist)

    def test_empty_registry(self):
        assert to_jsonl(MetricsRegistry()) == ""


class TestTable:
    def test_rows_present(self):
        table = to_table(_sample_registry())
        assert "repro_codec_calls_total" in table
        assert "algorithm=zstd" in table
        assert "p99" in table  # histogram row carries quantiles

    def test_empty_registry(self):
        assert "no telemetry" in to_table(MetricsRegistry())


class TestDeterministicJson:
    def test_json_line_sorts_keys_and_rounds(self):
        from repro.obs.export import json_line

        line = json_line({"b": 1 / 3, "a": {"z": 2 / 3, "y": 1}})
        assert line == '{"a":{"y":1,"z":0.666666667},"b":0.333333333}'
        # identical input -> identical bytes, regardless of insertion order
        assert line == json_line({"a": {"y": 1, "z": 2 / 3}, "b": 1 / 3})

    def test_round_floats_recursive_and_nonfinite_safe(self):
        import math

        from repro.obs.export import round_floats

        out = round_floats({"xs": [1.23456789012, {"y": 2.0}], "n": 3})
        assert out == {"xs": [1.23456789, {"y": 2.0}], "n": 3}
        assert math.isinf(round_floats(float("inf")))
        assert math.isnan(round_floats(float("nan")))

    def test_snapshot_order_independent_of_recording_order(self):
        from repro.obs.export import registry_snapshot
        from repro.obs.metrics import MetricsRegistry

        def build(order):
            reg = MetricsRegistry()
            for name, codec in order:
                reg.counter(name).inc(1, codec=codec)
            return registry_snapshot(reg)

        forward = build([("b_calls", "zstd"), ("a_calls", "lz4")])
        backward = build([("a_calls", "lz4"), ("b_calls", "zstd")])
        assert forward == backward
        assert [e["metric"] for e in forward] == sorted(
            e["metric"] for e in forward
        )

    def test_jsonl_byte_identical_across_runs(self):
        from repro.obs.export import to_jsonl
        from repro.obs.metrics import MetricsRegistry

        def build():
            reg = MetricsRegistry()
            reg.counter("calls").inc(3, codec="zstd")
            reg.histogram("lat").observe(0.125, codec="zstd")
            reg.gauge("mem").inc(7.0)
            return to_jsonl(reg)

        assert build() == build()
