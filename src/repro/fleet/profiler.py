"""The sampling profiler: draws weighted call-stack samples from the fleet.

Mirrors the methodology of Section III-A: cycles are sampled in proportion
to each service's compute share; stacks inside compression are attributed to
an (algorithm, direction, level, stage) leaf according to the service's
profile. Identical leaves are aggregated with multinomial counts, which
keeps a 30-day fleet profile tractable in memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fleet.callstack import CallStackSample, build_stack
from repro.fleet.profiles import DEFAULT_FLEET, ServiceProfile
from repro.obs.instrument import record_fleet_sample
from repro.obs.state import OBS_STATE

#: fraction of compression cycles in the match-finding stage, by level.
#: Low levels are entropy-dominated, high levels match-finding-dominated
#: (Fig. 7: ~30% at level 1, ~80% at level 7+).


def match_finding_fraction(level: int) -> float:
    if level <= 0:
        return 0.25
    return min(0.85, 0.25 + 0.09 * level)


class SamplingProfiler:
    """Draws a fleet profile over a time window."""

    def __init__(
        self,
        fleet: Optional[List[ServiceProfile]] = None,
        samples_per_day: int = 2_000_000,
        seed: int = 30,
    ) -> None:
        self.fleet = fleet if fleet is not None else DEFAULT_FLEET
        self.samples_per_day = samples_per_day
        self.seed = seed

    def _service_leaves(
        self, profile: ServiceProfile
    ) -> List[Tuple[float, Optional[str], Optional[str], Optional[int], Optional[str]]]:
        """(probability, algorithm, direction, level, stage) leaves."""
        leaves = [(1.0 - profile.compression_share, None, None, None, None)]
        for algorithm, algo_weight in profile.algorithm_mix.items():
            base = profile.compression_share * algo_weight
            compress_weight = base * profile.compress_fraction
            decompress_weight = base * (1.0 - profile.compress_fraction)
            leaves.append((decompress_weight, algorithm, "decompress", None, None))
            if algorithm == "zstd":
                for level, level_weight in profile.level_mix.items():
                    weight = compress_weight * level_weight
                    mf = match_finding_fraction(level)
                    leaves.append(
                        (weight * mf, algorithm, "compress", level, "match_finding")
                    )
                    leaves.append(
                        (weight * (1 - mf), algorithm, "compress", level, "entropy")
                    )
            else:
                leaves.append((compress_weight, algorithm, "compress", None, None))
        return leaves

    def run(self, days: int = 30) -> List[CallStackSample]:
        """Profile the fleet for ``days``; returns aggregated samples."""
        rng = np.random.default_rng(self.seed)
        total_samples = self.samples_per_day * days

        leaf_specs: List[Tuple[ServiceProfile, Tuple]] = []
        probabilities: List[float] = []
        for profile in self.fleet:
            for leaf in self._service_leaves(profile):
                weight = profile.fleet_compute_share * leaf[0]
                if weight <= 0:
                    continue
                leaf_specs.append((profile, leaf))
                probabilities.append(weight)
        probs = np.asarray(probabilities)
        probs = probs / probs.sum()
        counts = rng.multinomial(total_samples, probs)

        samples: List[CallStackSample] = []
        for (profile, leaf), count in zip(leaf_specs, counts):
            if count == 0:
                continue
            __, algorithm, direction, level, stage = leaf
            median, sigma = profile.block_size
            block_size = (
                int(rng.lognormal(np.log(median), sigma))
                if algorithm is not None
                else None
            )
            samples.append(
                CallStackSample(
                    service=profile.name,
                    category=profile.category,
                    frames=build_stack(profile.name, algorithm, direction, stage),
                    weight=int(count),
                    level=level,
                    stage=stage,
                    block_size=block_size,
                )
            )
            if OBS_STATE.enabled:
                record_fleet_sample(
                    profile.name, algorithm, direction, level, stage, int(count)
                )
        return samples

    def block_size_samples(
        self, profile: ServiceProfile, count: int = 1000
    ) -> np.ndarray:
        """Draw per-call block sizes for one service (Fig. 5's data)."""
        # lazy import: fleet must not pull the cluster plane at import time
        from repro.cluster.ring import stable_hash

        rng = np.random.default_rng(self.seed + stable_hash(profile.name) % 65536)
        median, sigma = profile.block_size
        return rng.lognormal(np.log(median), sigma, size=count).astype(np.int64)
