"""Seeded open-loop workload generation for the serving plane.

Open-loop means arrivals do not wait for completions — the defining
property of datacenter overload (users keep clicking whether or not the
service keeps up), and the reason an admission controller is needed at
all. Two arrival processes:

- ``poisson`` — homogeneous Poisson at ``rate_rps`` (exponential
  inter-arrivals);
- ``diurnal`` — an inhomogeneous Poisson whose rate follows a sinusoidal
  day curve, ``rate * (1 + amplitude * sin(2*pi*t/period))``, generated
  by thinning a homogeneous process at the peak rate. One simulated
  "day" is compressed to ``period`` seconds, the usual trick for making
  a diurnal study runnable.

The tenant mix and payload shapes come from the same places the rest of
the repository gets its truth: tenants are derived from the fleet
registry (:mod:`repro.fleet.profiles` — category, traffic weight, and
lognormal payload-size parameters), and payload *content* comes from the
:mod:`repro.corpus` generators for that category, sliced from one
pre-generated corpus per tenant so a 10k-request run stays cheap.

Everything draws from one :class:`~repro.corpus.SeededSampler`, so the
full request sequence is a pure function of ``(tenants, rate, duration,
seed, process)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.corpus import (
    CACHE1_TYPES,
    SeededSampler,
    generate_ads_request,
    generate_cache_items,
    generate_logs,
    generate_records,
)
from repro.fleet.profiles import DEFAULT_FLEET, ServiceProfile
from repro.serving.queue import ServingRequest


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic shape."""

    name: str
    #: relative arrival share and fair-queue weight
    weight: float
    #: lognormal payload size parameters (median bytes, sigma)
    median_bytes: int
    sigma: float
    #: per-request deadline, seconds after arrival (inf = none)
    deadline_seconds: float
    #: corpus family the payload bytes come from
    corpus: str = "records"


#: deadline budgets per fleet category, seconds — tight for interactive
#: categories, loose for batch (the Section-IV requirements in miniature)
_CATEGORY_DEADLINES = {
    "Cache": 0.05,
    "Key-Value Store": 0.10,
    "Web": 0.20,
    "Feed": 0.10,
    "Ads": 0.50,
    "Data Warehouse": 5.0,
}

#: corpus family per fleet category
_CATEGORY_CORPUS = {
    "Cache": "cache",
    "Key-Value Store": "records",
    "Web": "logs",
    "Feed": "records",
    "Ads": "ads",
    "Data Warehouse": "logs",
}


def tenants_from_fleet(
    categories: Sequence[str] = ("Cache", "Key-Value Store", "Web", "Ads"),
    fleet: Optional[List[ServiceProfile]] = None,
    max_median_bytes: int = 16384,
) -> List[TenantSpec]:
    """One tenant per category: its biggest compression user.

    The tenant's weight is the service's share of fleet compression
    cycles (compute share x compression share), its payload sizes are the
    profile's lognormal block-size parameters (clamped so the pure-Python
    codecs stay fast), and its deadline follows the category.
    """
    fleet = fleet if fleet is not None else DEFAULT_FLEET
    tenants: List[TenantSpec] = []
    for category in categories:
        candidates = [p for p in fleet if p.category == category]
        if not candidates:
            raise ValueError(f"no fleet profile in category {category!r}")
        top = max(
            candidates,
            key=lambda p: p.fleet_compute_share * p.compression_share,
        )
        median, sigma = top.block_size
        tenants.append(
            TenantSpec(
                name=top.name,
                weight=top.fleet_compute_share * top.compression_share,
                median_bytes=min(median, max_median_bytes),
                sigma=sigma,
                deadline_seconds=_CATEGORY_DEADLINES.get(category, 1.0),
                corpus=_CATEGORY_CORPUS.get(category, "records"),
            )
        )
    total = sum(t.weight for t in tenants)
    return [
        TenantSpec(
            t.name,
            t.weight / total,
            t.median_bytes,
            t.sigma,
            t.deadline_seconds,
            t.corpus,
        )
        for t in tenants
    ]


def _tenant_corpus(spec: TenantSpec, seed: int, size: int = 1 << 17) -> bytes:
    """One deterministic corpus blob per tenant; requests slice windows."""
    if spec.corpus == "cache":
        items = generate_cache_items(CACHE1_TYPES, 64, seed=seed)
        blob = b"".join(payload for __, payload in items)
    elif spec.corpus == "logs":
        blob = generate_logs(size, seed=seed)
    elif spec.corpus == "ads":
        blob = b"".join(
            generate_ads_request("A", seed=seed + i) for i in range(4)
        )
    else:
        blob = generate_records(size, seed=seed)
    while len(blob) < size:
        blob += blob
    return blob[:size]


class WorkloadGenerator:
    """Deterministic open-loop request stream."""

    def __init__(
        self,
        tenants: Optional[Sequence[TenantSpec]] = None,
        rate_rps: float = 50.0,
        duration_seconds: float = 10.0,
        seed: int = 7,
        process: str = "poisson",
        diurnal_amplitude: float = 0.6,
        diurnal_period: Optional[float] = None,
        payload_pool: Optional[int] = None,
    ) -> None:
        if process not in ("poisson", "diurnal"):
            raise ValueError("process must be 'poisson' or 'diurnal'")
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if not 0 <= diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if payload_pool is not None and payload_pool < 1:
            raise ValueError("payload_pool must be at least 1 (or None)")
        self.tenants = (
            list(tenants) if tenants is not None else tenants_from_fleet()
        )
        self.rate_rps = rate_rps
        self.duration_seconds = duration_seconds
        self.seed = seed
        self.process = process
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period = (
            diurnal_period if diurnal_period is not None else duration_seconds
        )
        #: when set, each tenant draws payloads from a fixed pool of this
        #: many pre-sliced windows instead of slicing fresh per request.
        #: The cluster simulator uses this: payload *content* stays real
        #: and tenant-shaped, but the distinct-payload population is
        #: bounded, which lets the fleet codec cache amortize compression
        #: across O(10^5)-request runs.
        self.payload_pool = payload_pool
        self._corpora: Dict[str, bytes] = {}
        self._pools: Dict[str, List[bytes]] = {}

    def tenant_weights(self) -> Dict[str, float]:
        return {t.name: t.weight for t in self.tenants}

    def _build_pool(self, spec: TenantSpec) -> List[bytes]:
        """The tenant's fixed payload pool, a pure function of (tenants,
        seed, pool size) — a dedicated sampler keyed by the tenant's
        position keeps pools independent of arrival order."""
        index = [t.name for t in self.tenants].index(spec.name)
        corpus = self._corpora.get(spec.name)
        if corpus is None:
            corpus = self._corpora[spec.name] = _tenant_corpus(
                spec, seed=self.seed * 1009 + index
            )
        rng = SeededSampler(self.seed * 7919 + 31 * index + 1).rng
        pool: List[bytes] = []
        for __ in range(self.payload_pool):
            size = int(
                min(
                    max(
                        rng.lognormal(
                            mean=math.log(spec.median_bytes), sigma=spec.sigma
                        ),
                        64,
                    ),
                    1 << 16,
                )
            )
            start = int(rng.integers(0, max(1, len(corpus) - size)))
            pool.append(corpus[start : start + size])
        return pool

    def _rate_at(self, t: float) -> float:
        if self.process == "poisson":
            return self.rate_rps
        phase = 2.0 * math.pi * t / self.diurnal_period
        return self.rate_rps * (1.0 + self.diurnal_amplitude * math.sin(phase))

    def generate(self) -> List[ServingRequest]:
        """The full request list, arrival-ordered."""
        sampler = SeededSampler(self.seed)
        rng = sampler.rng
        names = [t.name for t in self.tenants]
        weights = [t.weight for t in self.tenants]
        by_name = {t.name: t for t in self.tenants}
        peak = (
            self.rate_rps * (1.0 + self.diurnal_amplitude)
            if self.process == "diurnal"
            else self.rate_rps
        )
        requests: List[ServingRequest] = []
        t = 0.0
        request_id = 0
        while True:
            t += float(rng.exponential(1.0 / peak))
            if t >= self.duration_seconds:
                break
            # thinning: accept with probability lambda(t) / peak
            if self.process == "diurnal" and (
                float(rng.random()) >= self._rate_at(t) / peak
            ):
                continue
            name = str(rng.choice(names, p=weights))
            spec = by_name[name]
            if self.payload_pool:
                pool = self._pools.get(name)
                if pool is None:
                    pool = self._pools[name] = self._build_pool(spec)
                payload = pool[int(rng.integers(0, len(pool)))]
            else:
                size = int(
                    min(
                        max(
                            rng.lognormal(
                                mean=math.log(spec.median_bytes),
                                sigma=spec.sigma,
                            ),
                            64,
                        ),
                        1 << 16,
                    )
                )
                corpus = self._corpora.get(name)
                if corpus is None:
                    corpus = self._corpora[name] = _tenant_corpus(
                        spec, seed=self.seed * 1009 + len(self._corpora)
                    )
                start = int(rng.integers(0, max(1, len(corpus) - size)))
                payload = corpus[start : start + size]
            requests.append(
                ServingRequest(
                    request_id=request_id,
                    tenant=name,
                    payload=payload,
                    arrival=t,
                    deadline=t + spec.deadline_seconds,
                )
            )
            request_id += 1
        return requests
