"""Auto-tuner (paper Section VI-C): service data characteristics drift over
time, so the optimal compression configuration drifts too; the
:class:`~repro.core.autotuner.AutoTuner` watches the byte-level distribution
of fresh samples and re-runs CompOpt only when the data actually moves.

The workload starts as highly structured records (dictionary-friendly) and
drifts toward sparse binary feature payloads; the tuner follows.

Run:  python examples/autotuner_drift.py
"""

from repro.core import AutoTuner, CostModel, CostParameters
from repro.core.config import config_grid
from repro.corpus import generate_ads_request, generate_records


def _workload(epoch: int) -> list:
    """Samples whose composition drifts with the epoch (0..4)."""
    structured = 4 - epoch
    binary = epoch
    samples = [generate_records(8192, seed=epoch * 10 + i) for i in range(structured)]
    samples += [
        generate_ads_request("B", seed=epoch * 10 + i)[:8192] for i in range(binary)
    ]
    return samples or [generate_records(8192, seed=epoch)]


def main() -> None:
    model = CostModel(
        CostParameters.from_price_book(beta=1e-6, retention_days=14.0)
    )
    grid = config_grid(["zstd", "lz4"], levels=[1, 3, 6, 9])
    tuner = AutoTuner(model, grid, drift_threshold=0.06, window=4)

    print("epoch  workload mix              config        ratio  event")
    for epoch in range(5):
        event = tuner.observe(_workload(epoch))
        current = tuner.current
        mix = f"{4 - epoch} structured / {epoch} binary"
        note = event.reason if event else "(no drift, config kept)"
        print(
            f"  {epoch}    {mix:24s} {current.config.label():12s} "
            f"{current.metrics.ratio:5.2f}  {note}"
        )

    print(
        f"\n{len(tuner.history)} tuning passes over 5 epochs -- CompOpt ran"
        f"\nonly when the byte distribution moved, which is the cost/SLO-aware"
        f"\nauto-tuner loop the paper sketches in Section VI-C."
    )


if __name__ == "__main__":
    main()
