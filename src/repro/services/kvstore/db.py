"""The LSM database: memtable, levels, flush, and compaction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.codecs import Compressor, get_codec
from repro.codecs.base import StageCounters
from repro.perfmodel import DEFAULT_MACHINE, MachineModel
from repro.services.kvstore.blockcache import BlockCache
from repro.services.kvstore.memtable import MemTable
from repro.services.kvstore.sst import SSTable


@dataclass
class KVStoreStats:
    """Aggregate compression and read-path accounting for one store."""

    flushes: int = 0
    compactions: int = 0
    reads: int = 0
    blocks_decompressed: int = 0
    read_decode_seconds: List[float] = field(default_factory=list)
    compress_counters: StageCounters = field(default_factory=StageCounters)
    decompress_counters: StageCounters = field(default_factory=StageCounters)
    raw_bytes_written: int = 0
    stored_bytes_written: int = 0

    @property
    def storage_ratio(self) -> float:
        """Overall compression ratio of everything flushed/compacted."""
        if not self.stored_bytes_written:
            return 1.0
        return self.raw_bytes_written / self.stored_bytes_written

    @property
    def mean_read_decode_seconds(self) -> float:
        if not self.read_decode_seconds:
            return 0.0
        return sum(self.read_decode_seconds) / len(self.read_decode_seconds)


class KVStore:
    """A minimal levelled-compaction LSM store with compressed SST blocks.

    ``compression_level`` and ``block_size`` are the knobs KVSTORE1 tunes
    (Section IV-E): bigger blocks compress better but cost more per point
    read, since the whole block must be decompressed.
    """

    def __init__(
        self,
        codec: Optional[Compressor] = None,
        compression_level: int = 1,
        block_size: int = 16384,
        memtable_bytes: int = 1 << 18,
        level0_table_limit: int = 4,
        level_size_multiplier: int = 4,
        machine: MachineModel = DEFAULT_MACHINE,
        block_cache_bytes: Optional[int] = None,
        bloom_bits_per_key: int = 10,
    ) -> None:
        self.codec = codec if codec is not None else get_codec("zstd")
        self.compression_level = compression_level
        self.block_size = block_size
        self.memtable_bytes = memtable_bytes
        self.level0_table_limit = level0_table_limit
        self.level_size_multiplier = level_size_multiplier
        self.machine = machine
        self.block_cache = (
            BlockCache(block_cache_bytes) if block_cache_bytes else None
        )
        self.bloom_bits_per_key = bloom_bits_per_key
        self.memtable = MemTable(memtable_bytes)
        #: levels[0] is newest-first; deeper levels hold one merged SST each
        self.levels: List[List[SSTable]] = [[]]
        self.stats = KVStoreStats()

    # -- write path -----------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self.memtable.put(bytes(key), bytes(value))
        if self.memtable.is_full():
            self.flush()

    def delete(self, key: bytes) -> None:
        self.memtable.put(bytes(key), None)
        if self.memtable.is_full():
            self.flush()

    def flush(self) -> None:
        """Write the memtable out as a level-0 SST."""
        if not len(self.memtable):
            return
        table = SSTable.build(
            self.memtable.sorted_entries(),
            codec=self.codec,
            level=self.compression_level,
            block_size=self.block_size,
            machine=self.machine,
            bloom_bits_per_key=self.bloom_bits_per_key,
            block_cache=self.block_cache,
        )
        self._absorb_build_stats(table)
        self.levels[0].insert(0, table)
        self.memtable = MemTable(self.memtable_bytes)
        self.stats.flushes += 1
        self._maybe_compact()

    def _absorb_build_stats(self, table: SSTable) -> None:
        self.stats.compress_counters.merge(table.stats.compress_counters)
        self.stats.raw_bytes_written += table.stats.raw_bytes
        self.stats.stored_bytes_written += table.stats.stored_bytes

    # -- compaction -------------------------------------------------------------

    def _maybe_compact(self) -> None:
        level = 0
        while level < len(self.levels):
            limit = self.level0_table_limit * (
                self.level_size_multiplier ** level if level else 1
            )
            if len(self.levels[level]) > max(1, limit if level == 0 else 1):
                self._compact_level(level)
            level += 1

    def _compact_level(self, level: int) -> None:
        """Merge every SST in ``level`` (plus the next level) downward."""
        sources = list(self.levels[level])
        if level + 1 < len(self.levels):
            sources.extend(self.levels[level + 1])
        else:
            self.levels.append([])
        merged = self._merge(sources, drop_tombstones=level + 2 >= len(self.levels))
        for table in sources:
            self.stats.decompress_counters.merge(table.stats.decompress_counters)
        if merged:
            table = SSTable.build(
                merged,
                codec=self.codec,
                level=self.compression_level,
                block_size=self.block_size,
                machine=self.machine,
                bloom_bits_per_key=self.bloom_bits_per_key,
                block_cache=self.block_cache,
            )
            self._absorb_build_stats(table)
            self.levels[level + 1] = [table]
        else:
            self.levels[level + 1] = []
        self.levels[level] = []
        self.stats.compactions += 1

    @staticmethod
    def _merge(
        tables: List[SSTable], drop_tombstones: bool
    ) -> List[Tuple[bytes, Optional[bytes]]]:
        """Newest-wins merge of sorted runs, removing overlapping items."""
        winners: Dict[bytes, Optional[bytes]] = {}
        # tables are ordered newest first; first writer wins.
        for table in tables:
            for key, value in table.scan():
                if key not in winners:
                    winners[key] = value
        entries = sorted(winners.items())
        if drop_tombstones:
            entries = [(k, v) for k, v in entries if v is not None]
        return entries

    # -- read path ---------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Point read; records per-read block decode latency."""
        key = bytes(key)
        self.stats.reads += 1
        found, value = self.memtable.get(key)
        if found:
            self.stats.read_decode_seconds.append(0.0)
            return value
        for level_tables in self.levels:
            for table in level_tables:
                before = table.stats.blocks_read
                found, value, decode_seconds = table.get(key)
                if table.stats.blocks_read > before:
                    self.stats.blocks_decompressed += (
                        table.stats.blocks_read - before
                    )
                if found:
                    self.stats.read_decode_seconds.append(decode_seconds)
                    return value
        self.stats.read_decode_seconds.append(0.0)
        return None

    def scan_range(self, start: bytes, end: bytes):
        """Yield (key, value) with start <= key < end, newest value wins.

        Merges the memtable and every SST; tombstoned keys are omitted.
        """
        start, end = bytes(start), bytes(end)
        winners: Dict[bytes, Optional[bytes]] = {}
        for key, value in self.memtable.sorted_entries():
            if start <= key < end:
                winners[key] = value
        for level_tables in self.levels:
            for table in level_tables:
                if not table.block_count:
                    continue
                for key, value in table.scan_range(start, end):
                    if key not in winners:
                        winners[key] = value
        for key in sorted(winners):
            value = winners[key]
            if value is not None:
                yield key, value

    def total_decompress_counters(self) -> StageCounters:
        """All decompression work so far: retired tables plus live ones."""
        total = self.stats.decompress_counters.copy()
        for level_tables in self.levels:
            for table in level_tables:
                total.merge(table.stats.decompress_counters)
        return total

    @property
    def sst_count(self) -> int:
        return sum(len(tables) for tables in self.levels)

    @property
    def bloom_skips(self) -> int:
        """Point reads answered 'absent' by bloom filters, fleet-wide."""
        return sum(
            table.stats.bloom_skips
            for level_tables in self.levels
            for table in level_tables
        )

    @property
    def block_cache_hits(self) -> int:
        return sum(
            table.stats.cache_hits
            for level_tables in self.levels
            for table in level_tables
        )

    @property
    def quarantined_blocks(self) -> int:
        """Blocks removed from service after failing verified-decompress.

        The read path treats a quarantined block as "key absent in this
        table" and falls through to older levels, so LSM redundancy is the
        recovery mechanism for storage corruption.
        """
        return sum(
            table.quarantined_count
            for level_tables in self.levels
            for table in level_tables
        )
