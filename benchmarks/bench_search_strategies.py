"""Ablation: CompOpt search strategies (Section V-A / VI-C).

Exhaustive search is the paper's baseline; random sampling and the
evolutionary search trade exploration for fewer candidate evaluations --
the trade an auto-tuner would make on larger spaces.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import CompEngine, CompOpt, CostModel, CostParameters
from repro.core.config import config_grid
from repro.core.search import EvolutionarySearch, ExhaustiveSearch, RandomSearch
from repro.corpus import generate_records


@pytest.fixture(scope="module")
def comparison():
    engine = CompEngine([generate_records(16384, seed=200)])
    model = CostModel(CostParameters.from_price_book(beta=1e-7))
    grid = config_grid(["zstd", "lz4", "zlib"], levels=range(1, 10))
    out = {}
    for name, strategy in (
        ("exhaustive", ExhaustiveSearch()),
        ("random-8", RandomSearch(budget=8, seed=1)),
        ("evolutionary", EvolutionarySearch(generations=4, population=6, seed=1)),
    ):
        result = CompOpt(engine, model, strategy=strategy).optimize(grid)
        out[name] = (len(result.ranked), result.best_any.total_cost)
    return out


def test_search_strategies(benchmark, comparison, figure_output):
    best_exhaustive = comparison["exhaustive"][1]
    rows = [
        [name, evaluated, f"{cost / best_exhaustive:.3f}"]
        for name, (evaluated, cost) in comparison.items()
    ]
    figure_output(
        "search_strategies",
        format_table(
            ["strategy", "configs evaluated", "best cost vs exhaustive"],
            rows,
            title="Ablation: CompOpt search strategies",
        ),
    )
    # Cheaper strategies evaluate fewer configs...
    assert comparison["random-8"][0] < comparison["exhaustive"][0]
    assert comparison["evolutionary"][0] < comparison["exhaustive"][0]
    # ...and stay within 30% of the exhaustive optimum on this grid.
    assert comparison["evolutionary"][1] <= 1.3 * best_exhaustive
    assert comparison["random-8"][1] <= 1.3 * best_exhaustive

    engine = CompEngine([generate_records(4096, seed=201)])
    model = CostModel(CostParameters.from_price_book(beta=1e-7))
    small_grid = config_grid(["zstd"], levels=[1, 3])
    benchmark(lambda: CompOpt(engine, model).optimize(small_grid))
