"""Deterministic discrete-event simulation of the sharded cluster.

This extends the single-node simulator (:mod:`repro.serving.simulate`)
to a fleet: one seeded :class:`~repro.serving.workload.WorkloadGenerator`
feeds a consistent-hash :class:`~repro.cluster.ring.HashRing` routing
tenants to :class:`~repro.cluster.node.ClusterNode` shards, all advanced
by one event heap over one :class:`~repro.resilience.clock.SimClock`.
Per-shard telemetry windows fold into fleet windows by index
(:func:`repro.obs.rollup.merge_shard_windows`), the fleet SLOs (shed
rate, p99 latency) evaluate on the fold, and two control loops act on
the same signals the alert plane reads:

- the :class:`~repro.cluster.autoscaler.Autoscaler` adds nodes under
  queue pressure / p99 burn and drains the least-loaded node when the
  fleet idles — a drained node leaves the ring immediately but serves
  its queue to empty before retiring, so scale-down never strands an
  admitted request;
- the :class:`~repro.cluster.rebalance.Rebalancer` migrates a tenant
  that dominates a pressured shard onto the coldest nodes, moving only
  that tenant's keys.

Everything is modeled time; the same ``(scenario, seed, scale)``
renders a byte-identical scorecard across runs *and* across ``--jobs``
(the memoized in-process codec path and the executor path produce
identical outputs — CI diffs them). ``scale`` multiplies duration:
the default scenarios run a few thousand requests, ``--scale 30`` takes
the same scenario to O(10⁵) requests across tens of nodes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.rollup import merge_shard_windows
from repro.obs.slo import (
    PAGE,
    SLO,
    AlertTransition,
    SLOEvaluator,
    WARN,
)
from repro.obs.timeseries import WindowSnapshot, merge_windows
from repro.parallel.executors import make_executor
from repro.resilience.clock import SimClock
from repro.serving.degrade import DegradationLadder
from repro.serving.queue import ServingRequest
from repro.serving.simulate import DEFAULT_WINDOW_SECONDS, build_scenario_ladder
from repro.serving.slos import (
    ALL_TENANTS,
    WINDOW_LATENCY,
    latency_p99_slo,
    record_window_completion,
    shed_rate_slo,
)
from repro.serving.workload import TenantSpec, WorkloadGenerator, tenants_from_fleet
from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent
from repro.cluster.node import (
    ACTIVE,
    DRAINING,
    RETIRED,
    ClusterNode,
    CodecCache,
    NodeConfig,
    memo_codec_factory,
)
from repro.cluster.rebalance import (
    RebalanceEvent,
    Rebalancer,
    RebalancerConfig,
    TenantRouter,
)
from repro.cluster.ring import HashRing


@dataclass(frozen=True)
class ClusterScenario:
    """One named fleet-level load shape."""

    name: str
    description: str
    rate_rps: float
    duration_seconds: float
    initial_nodes: int
    node: NodeConfig = NodeConfig()
    process: str = "poisson"
    diurnal_amplitude: float = 0.6
    #: ring shape
    vnodes: int = 64
    replicas: int = 2
    #: control-loop tick spacing, simulated seconds
    control_interval_seconds: float = 0.25
    autoscale: bool = True
    autoscaler: AutoscalerConfig = AutoscalerConfig()
    rebalance: bool = False
    rebalancer: RebalancerConfig = RebalancerConfig()
    #: multiply the heaviest tenant's weight by this (1.0 = natural mix)
    hot_tenant_boost: float = 1.0
    #: distinct payloads per tenant (the codec-cache working set)
    payload_pool: int = 48
    #: clamp on tenant median payload bytes — the cache makes request
    #: *count* cheap but every distinct pool payload is compressed for
    #: real, so fleet scenarios keep the working set modest
    payload_median_cap: int = 4096
    #: fleet SLO objectives
    shed_budget: float = 0.002
    latency_p99_seconds: float = 0.25
    categories: Tuple[str, ...] = ("Cache", "Key-Value Store", "Web", "Ads")


CLUSTER_SCENARIOS: Dict[str, ClusterScenario] = {
    "fleet-steady": ClusterScenario(
        name="fleet-steady",
        description="comfortable fleet headroom; autoscaler may trim idle nodes",
        rate_rps=300.0,
        duration_seconds=6.0,
        initial_nodes=8,
        autoscaler=AutoscalerConfig(min_nodes=4, max_nodes=12),
    ),
    "fleet-surge": ClusterScenario(
        name="fleet-surge",
        description="diurnal swing whose peak overloads the initial fleet",
        rate_rps=600.0,
        duration_seconds=8.0,
        initial_nodes=4,
        process="diurnal",
        diurnal_amplitude=0.85,
        # contended hosts: the initial fleet covers the base rate with
        # ~55% headroom but the diurnal peak (~1110 rps) exceeds it
        node=NodeConfig(service_scale=1000.0),
        rebalance=True,
        rebalancer=RebalancerConfig(hot_share=0.4, pressure_floor=0.4),
        autoscaler=AutoscalerConfig(
            min_nodes=3,
            max_nodes=16,
            # act on queue growth early enough that short-deadline
            # tenants are not already expiring (expiry counts against
            # the shed-rate budget) — see the scale-before-page test
            up_pressure=0.25,
            down_pressure=0.08,
            down_after=8,
            step_up=2,
        ),
        shed_budget=0.01,
    ),
    "fleet-hotspot": ClusterScenario(
        name="fleet-hotspot",
        description="one tenant dominates; the rebalancer spreads it",
        rate_rps=520.0,
        duration_seconds=6.0,
        initial_nodes=6,
        node=NodeConfig(service_scale=1000.0),
        hot_tenant_boost=6.0,
        rebalance=True,
        rebalancer=RebalancerConfig(hot_share=0.4, pressure_floor=0.4),
        autoscale=False,
        autoscaler=AutoscalerConfig(min_nodes=4, max_nodes=16),
        shed_budget=0.01,
    ),
}


@dataclass
class ShardReport:
    """One node's line in the scorecard."""

    name: str
    status: str
    created_at: float
    retired_at: Optional[float]
    routed: int
    admitted: int
    throttled: int
    shed: int
    expired: int
    served: int
    degraded: int
    raw_fallbacks: int
    bytes_in: int
    bytes_out: int
    peak_depth: int
    p99_ms: Optional[float]


@dataclass
class ClusterReport:
    """Everything one cluster run learned."""

    scenario: str
    seed: int
    scale: float
    window_seconds: float
    autoscale_enabled: bool
    rebalance_enabled: bool
    ladder_labels: List[str]
    rung0_ratio: float
    nodes_initial: int
    nodes_peak: int = 0
    nodes_final_active: int = 0
    # -- fleet traffic --
    arrivals: int = 0
    admitted: int = 0
    throttled: int = 0
    shed: int = 0
    expired: int = 0
    served: int = 0
    on_time: int = 0
    tardy: int = 0
    degraded: int = 0
    raw_fallbacks: int = 0
    bytes_in_served: int = 0
    bytes_out: int = 0
    bytes_on_time: int = 0
    makespan_seconds: float = 0.0
    # -- distributions (one-shot fleet recording, label ``source``) --
    latency: Histogram = field(
        default_factory=lambda: Histogram(
            "cluster_latency_seconds", "end-to-end request latency"
        )
    )
    wait: Histogram = field(
        default_factory=lambda: Histogram(
            "cluster_wait_seconds", "queue wait before dispatch"
        )
    )
    # -- per shard / control planes --
    shards: List[ShardReport] = field(default_factory=list)
    scale_events: List[ScaleEvent] = field(default_factory=list)
    rebalance_events: List[RebalanceEvent] = field(default_factory=list)
    # -- the fleet SLO fold --
    fleet_windows: int = 0
    final_states: Dict[str, str] = field(default_factory=dict)
    page_seconds: Dict[str, float] = field(default_factory=dict)
    warn_seconds: Dict[str, float] = field(default_factory=dict)
    transitions: List[AlertTransition] = field(default_factory=list)
    #: the merged fleet registry (every fleet window folded together)
    fleet_registry: Optional[MetricsRegistry] = None
    #: codec cache traffic (jobs=1 memo path only; not in the scorecard
    #: because the executor path legitimately bypasses the cache)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def goodput_bytes_per_second(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.bytes_on_time / self.makespan_seconds

    @property
    def achieved_ratio(self) -> float:
        if not self.bytes_out:
            return 1.0 if not self.bytes_in_served else float("inf")
        return self.bytes_in_served / self.bytes_out

    def shed_rate(self) -> float:
        offered = self.admitted + self.throttled + self.shed
        unserved = self.throttled + self.shed + self.expired
        return unserved / offered if offered else 0.0

    def total_page_seconds(self) -> float:
        return sum(self.page_seconds.values())

    def first_page_at(self) -> Optional[float]:
        for transition in self.transitions:
            if transition.to_state == PAGE:
                return transition.at
        return None

    def first_scale_up_at(self) -> Optional[float]:
        for event in self.scale_events:
            if event.action == Autoscaler.UP:
                return event.at
        return None


def cluster_slos(shed_budget: float, latency_bound: float) -> List[SLO]:
    """The fleet objectives, evaluated over merged shard windows."""
    return [shed_rate_slo(shed_budget), latency_p99_slo(latency_bound)]


def _resolve_scenario(scenario) -> ClusterScenario:
    if isinstance(scenario, ClusterScenario):
        return scenario
    try:
        return CLUSTER_SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown cluster scenario {scenario!r}; "
            f"available: {sorted(CLUSTER_SCENARIOS)}"
        )


def _cluster_tenants(sc: ClusterScenario) -> List[TenantSpec]:
    tenants = tenants_from_fleet(
        sc.categories, max_median_bytes=sc.payload_median_cap
    )
    if sc.hot_tenant_boost <= 1.0:
        return tenants
    hottest = max(tenants, key=lambda t: (t.weight, t.name))
    boosted = [
        TenantSpec(
            t.name,
            t.weight * sc.hot_tenant_boost if t.name == hottest.name else t.weight,
            t.median_bytes,
            t.sigma,
            t.deadline_seconds,
            t.corpus,
        )
        for t in tenants
    ]
    total = sum(t.weight for t in boosted)
    return [
        TenantSpec(
            t.name, t.weight / total, t.median_bytes, t.sigma,
            t.deadline_seconds, t.corpus,
        )
        for t in boosted
    ]


def _fleet_p99_burn(
    fleet_windows: Sequence[WindowSnapshot], bound: float, last: int = 4
) -> Optional[float]:
    if not fleet_windows:
        return None
    merged = merge_windows(fleet_windows[-last:])
    hist = merged.get(WINDOW_LATENCY)
    if not isinstance(hist, Histogram) or not hist.count(tenant=ALL_TENANTS):
        return None
    return hist.percentile(99, tenant=ALL_TENANTS) / bound


def run_cluster_simulation(
    scenario="fleet-surge",
    seed: int = 7,
    scale: float = 1.0,
    jobs: int = 1,
    autoscale: Optional[bool] = None,
    rebalance: Optional[bool] = None,
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
) -> ClusterReport:
    """Run one cluster scenario end to end; returns the full report.

    ``autoscale`` / ``rebalance`` override the scenario's control-loop
    switches (None = scenario default). ``jobs`` sizes a fleet-shared
    executor; ``jobs=1`` (the default) instead routes compression
    through the fleet codec cache in-process — both paths produce
    byte-identical scorecards, a property the determinism tests and the
    CI smoke diff.
    """
    sc = _resolve_scenario(scenario)
    if scale <= 0:
        raise ValueError("scale must be positive")
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    autoscale_on = sc.autoscale if autoscale is None else autoscale
    rebalance_on = sc.rebalance if rebalance is None else rebalance

    tenants = _cluster_tenants(sc)
    workload = WorkloadGenerator(
        tenants=tenants,
        rate_rps=sc.rate_rps,
        duration_seconds=sc.duration_seconds * scale,
        seed=seed,
        process=sc.process,
        diurnal_amplitude=sc.diurnal_amplitude,
        payload_pool=sc.payload_pool,
    )
    requests = workload.generate()
    ladder: DegradationLadder = build_scenario_ladder(requests)
    tenant_names = [t.name for t in tenants]
    tenant_weights = workload.tenant_weights()

    clock = SimClock()
    cache = CodecCache()
    if jobs == 1:
        codec_factory = memo_codec_factory(cache)
        executor = None
    else:
        codec_factory = None
        executor = make_executor(jobs)

    ring = HashRing(vnodes=sc.vnodes, replicas=sc.replicas)
    router = TenantRouter(ring)
    nodes: Dict[str, ClusterNode] = {}
    next_node_id = 0

    def spawn_node(at: float) -> ClusterNode:
        nonlocal next_node_id
        name = f"node-{next_node_id:02d}"
        next_node_id += 1
        ring.add_node(name)
        node = ClusterNode(
            name,
            ladder,
            sc.node,
            clock,
            tenant_weights=tenant_weights,
            window_seconds=window_seconds,
            codec_factory=codec_factory,
            executor=executor,
            created_at=at,
        )
        nodes[name] = node
        return node

    for __ in range(sc.initial_nodes):
        spawn_node(0.0)

    autoscaler = Autoscaler(sc.autoscaler) if autoscale_on else None
    rebalancer = (
        Rebalancer(router, sc.rebalancer) if rebalance_on else None
    )

    report = ClusterReport(
        scenario=sc.name,
        seed=seed,
        scale=scale,
        window_seconds=window_seconds,
        autoscale_enabled=autoscale_on,
        rebalance_enabled=rebalance_on,
        ladder_labels=ladder.labels(),
        rung0_ratio=ladder.rungs[0].ratio,
        nodes_initial=sc.initial_nodes,
        nodes_peak=sc.initial_nodes,
        arrivals=len(requests),
    )

    # -- the fleet SLO fold: merge per-shard windows by index ----------------
    evaluator = SLOEvaluator(
        cluster_slos(sc.shed_budget, sc.latency_p99_seconds)
    )
    fleet_windows: List[WindowSnapshot] = []
    fleet_index = 0

    def fold_fleet_windows(now: float) -> None:
        """Fold every fleet window ``now`` has fully passed. All node
        recorders share the epoch and were advanced to ``now`` first, so
        each closed index exists on every live node."""
        nonlocal fleet_index
        while (fleet_index + 1) * window_seconds <= now:
            slices = [
                node.windows[fleet_index]
                for __, node in sorted(nodes.items())
                if len(node.windows) > fleet_index
            ]
            if not slices:
                break
            merged = merge_shard_windows([slices])[0]
            fleet_windows.append(merged)
            edges = evaluator.on_window(fleet_windows, merged.end)
            report.transitions.extend(edges)
            fleet_index += 1

    # -- the event heap: (time, priority, seq, kind, payload) ----------------
    # completions (0) before arrivals (1) before control ticks (2) at the
    # same instant, so a control decision sees that instant's settled state
    events: List[Tuple[float, int, int, str, object]] = []
    seq = 0
    for request in requests:
        events.append((request.arrival, 1, seq, "arrival", request))
        seq += 1
    horizon = sc.duration_seconds * scale
    tick = sc.control_interval_seconds
    ticks = 1
    while ticks * tick <= horizon + 4 * tick:
        events.append((ticks * tick, 2, seq, "control", None))
        seq += 1
        ticks += 1
    heapq.heapify(events)
    last_event_at = 0.0
    #: per-tick routed volume per node per tenant (the rebalance signal)
    routed_delta: Dict[str, Dict[str, int]] = {}

    def dispatch(node: ClusterNode, now: float) -> None:
        nonlocal seq
        if node.status == RETIRED:
            return
        width = node.dispatch_width()
        if width <= 0:
            return
        for served in node.serve_batch(now, width):
            done_at = now + served.service_seconds
            heapq.heappush(
                events, (done_at, 0, seq, "done", (node.name, served))
            )
            seq += 1
            node.busy += 1

    def advance_all(now: float) -> None:
        for __, node in sorted(nodes.items()):
            node.advance_windows(now)
        fold_fleet_windows(now)

    def control_tick(now: float) -> None:
        active = [
            node for __, node in sorted(nodes.items())
            if node.status == ACTIVE
        ]
        pressures = [node.pressure for node in active]
        burn = _fleet_p99_burn(fleet_windows, sc.latency_p99_seconds)
        if rebalancer is not None:
            moved = rebalancer.observe(
                now,
                routed_delta,
                {node.name: node.pressure for node in active},
                [node.name for node in active],
            )
            report.rebalance_events.extend(moved)
        routed_delta.clear()
        if autoscaler is not None:
            decision = autoscaler.observe(
                now, len(active), pressures, burn
            )
            if decision == Autoscaler.UP:
                before = router.assignments(tenant_names)
                added: List[str] = []
                for __ in range(sc.autoscaler.step_up):
                    if len(active) + len(added) >= sc.autoscaler.max_nodes:
                        break
                    added.append(spawn_node(now).name)
                moved_tenants = sum(
                    1
                    for t in tenant_names
                    if router.replica_set(t) != before[t]
                )
                count = len(
                    [n for n in nodes.values() if n.status == ACTIVE]
                )
                report.nodes_peak = max(report.nodes_peak, count)
                mean = sum(pressures) / len(pressures) if pressures else 0.0
                report.scale_events.append(
                    ScaleEvent(
                        at=now,
                        action=Autoscaler.UP,
                        node="+".join(added),
                        nodes_after=count,
                        reason=(
                            f"pressure {mean:.2f}, "
                            f"burn {'-' if burn is None else f'{burn:.2f}'}"
                        ),
                        moved_tenants=moved_tenants,
                    )
                )
            elif decision == Autoscaler.DOWN:
                # drain the least-loaded active node
                victim = min(
                    active, key=lambda n: (n.queued() + n.busy, n.name)
                )
                before = router.assignments(tenant_names)
                victim.start_drain(now)
                ring.remove_node(victim.name)
                router.drop_node(victim.name, tenant_names)
                moved_tenants = sum(
                    1
                    for t in tenant_names
                    if router.replica_set(t) != before[t]
                )
                count = len(
                    [n for n in nodes.values() if n.status == ACTIVE]
                )
                mean = sum(pressures) / len(pressures) if pressures else 0.0
                report.scale_events.append(
                    ScaleEvent(
                        at=now,
                        action=Autoscaler.DOWN,
                        node=victim.name,
                        nodes_after=count,
                        reason=(
                            f"pressure {mean:.2f}, "
                            f"burn {'-' if burn is None else f'{burn:.2f}'}"
                        ),
                        moved_tenants=moved_tenants,
                    )
                )
        # retire drained nodes that have gone idle
        for __, node in sorted(nodes.items()):
            if node.status == DRAINING and node.idle():
                node.retire(now)

    while events:
        at, __, __, kind, payload = heapq.heappop(events)
        if at > clock.now():
            clock.advance(at - clock.now())
        advance_all(at)
        last_event_at = max(last_event_at, at)
        if kind == "arrival":
            request: ServingRequest = payload
            target = router.route(request.tenant, request.request_id)
            node = nodes[target]
            routed_delta.setdefault(target, {})
            routed_delta[target][request.tenant] = (
                routed_delta[target].get(request.tenant, 0) + 1
            )
            node.submit(request)
            dispatch(node, clock.now())
        elif kind == "done":
            node_name, served = payload
            node = nodes[node_name]
            node.busy -= 1
            latency = at - served.request.arrival
            on_time = at <= served.request.deadline
            node.controller.limiter.on_complete(latency)
            report.latency.observe(latency, source="all")
            report.latency.observe(latency, source=served.request.tenant)
            report.wait.observe(served.wait_seconds, source="all")
            if on_time:
                report.on_time += 1
                report.bytes_on_time += served.request.size
            else:
                report.tardy += 1
            if node.recorder is not None:
                record_window_completion(
                    node.recorder.registry(),
                    served.request.tenant,
                    latency,
                    served.wait_seconds,
                    on_time=on_time,
                    bytes_in=served.request.size,
                )
            dispatch(node, clock.now())
        else:
            control_tick(at)
            for __, node in sorted(nodes.items()):
                dispatch(node, clock.now())
    if executor is not None:
        executor.close()

    # -- tail: flush partial windows, fold what remains ----------------------
    advance_all(last_event_at)
    for __, node in sorted(nodes.items()):
        node.flush_windows()
    remaining: Dict[int, List[WindowSnapshot]] = {}
    for __, node in sorted(nodes.items()):
        for window in node.windows[fleet_index:]:
            remaining.setdefault(window.index, []).append(window)
    for index in sorted(remaining):
        merged = merge_shard_windows([remaining[index]])[0]
        fleet_windows.append(merged)
        edges = evaluator.on_window(fleet_windows, merged.end)
        report.transitions.extend(edges)
    end_at = fleet_windows[-1].end if fleet_windows else last_event_at
    evaluator.finish(end_at)
    # retire any still-idle drained node so the final census is honest
    for __, node in sorted(nodes.items()):
        if node.status == DRAINING and node.idle():
            node.retire(last_event_at)

    report.final_states = evaluator.states()
    report.page_seconds = evaluator.seconds_in(PAGE)
    report.warn_seconds = evaluator.seconds_in(WARN)
    report.fleet_windows = len(fleet_windows)
    report.fleet_registry = merge_windows(fleet_windows)
    report.makespan_seconds = last_event_at
    report.cache_hits = cache.hits
    report.cache_misses = cache.misses
    report.nodes_final_active = len(
        [n for n in nodes.values() if n.status == ACTIVE]
    )
    report.nodes_peak = max(
        report.nodes_peak,
        len([n for n in nodes.values() if n.status != RETIRED]),
    )

    for __, node in sorted(nodes.items()):
        stats = node.gateway.stats
        merged = merge_windows(node.windows)
        hist = merged.get(WINDOW_LATENCY)
        p99 = (
            hist.percentile(99, tenant=ALL_TENANTS) * 1e3
            if isinstance(hist, Histogram) and hist.count(tenant=ALL_TENANTS)
            else None
        )
        report.shards.append(
            ShardReport(
                name=node.name,
                status=node.status,
                created_at=node.created_at,
                retired_at=node.retired_at,
                routed=node.routed,
                admitted=stats.admitted,
                throttled=stats.throttled,
                shed=stats.shed,
                expired=stats.expired,
                served=stats.served,
                degraded=stats.degraded,
                raw_fallbacks=stats.raw_fallbacks,
                bytes_in=stats.bytes_in_served,
                bytes_out=stats.bytes_out,
                peak_depth=node.peak_depth,
                p99_ms=p99,
            )
        )
        report.admitted += stats.admitted
        report.throttled += stats.throttled
        report.shed += stats.shed
        report.expired += stats.expired
        report.served += stats.served
        report.degraded += stats.degraded
        report.raw_fallbacks += stats.raw_fallbacks
        report.bytes_in_served += stats.bytes_in_served
        report.bytes_out += stats.bytes_out
    return report


def _fmt_opt_ms(value: Optional[float]) -> str:
    return "-".rjust(8) if value is None else f"{value:8.2f}"


def format_cluster_scorecard(report: ClusterReport) -> str:
    """Render the report; byte-identical for identical reports."""
    lines = [
        f"cluster scorecard -- scenario '{report.scenario}', "
        f"seed {report.seed}, scale {report.scale:g}, "
        f"autoscaler {'on' if report.autoscale_enabled else 'off'}, "
        f"rebalancer {'on' if report.rebalance_enabled else 'off'}",
        "",
        f"ladder: {' -> '.join(report.ladder_labels)}",
        f"nodes:  initial {report.nodes_initial}, peak {report.nodes_peak}, "
        f"final active {report.nodes_final_active}",
        "",
        f"{'arrivals':>10s} {'admitted':>9s} {'throttled':>9s} {'shed':>6s} "
        f"{'expired':>8s} {'served':>7s} {'on-time':>8s} {'tardy':>6s}",
        f"{report.arrivals:10d} {report.admitted:9d} {report.throttled:9d} "
        f"{report.shed:6d} {report.expired:8d} {report.served:7d} "
        f"{report.on_time:8d} {report.tardy:6d}",
        "",
    ]
    for name, hist in (("latency", report.latency), ("queue wait", report.wait)):
        if hist.count(source="all"):
            lines.append(
                f"{name:10s} p50={hist.p50(source='all') * 1e3:9.3f} ms  "
                f"p90={hist.p90(source='all') * 1e3:9.3f} ms  "
                f"p99={hist.p99(source='all') * 1e3:9.3f} ms"
            )
    lines.append(
        f"goodput    {report.goodput_bytes_per_second / 1e6:.3f} MB/s on-time "
        f"({report.bytes_on_time} bytes in {report.makespan_seconds:.3f} s), "
        f"shed rate {report.shed_rate() * 100:.2f}%"
    )
    lines.append(
        f"ratio      achieved {report.achieved_ratio:.3f} "
        f"(rung-0 reference {report.rung0_ratio:.3f}); "
        f"degraded {report.degraded}, raw fallbacks {report.raw_fallbacks}"
    )
    lines.append("")
    lines.append(
        f"{'shard':9s} {'status':>8s} {'routed':>7s} {'admit':>6s} "
        f"{'shed':>5s} {'exp':>4s} {'served':>7s} {'degr':>5s} "
        f"{'p99 ms':>8s} {'peak-q':>6s}"
    )
    for shard in report.shards:
        lines.append(
            f"{shard.name:9s} {shard.status:>8s} {shard.routed:7d} "
            f"{shard.admitted:6d} {shard.shed:5d} {shard.expired:4d} "
            f"{shard.served:7d} {shard.degraded:5d} "
            f"{_fmt_opt_ms(shard.p99_ms)} {shard.peak_depth:6d}"
        )
    if report.scale_events:
        lines.append("")
        lines.append("autoscaler events:")
        for event in report.scale_events:
            lines.append(
                f"  {event.at:7.3f} s  scale-{event.action} {event.node} "
                f"-> {event.nodes_after} active ({event.reason}); "
                f"moved {event.moved_tenants} tenants"
            )
    if report.rebalance_events:
        lines.append("")
        lines.append("rebalance events:")
        for event in report.rebalance_events:
            lines.append(
                f"  {event.at:7.3f} s  {event.tenant}: "
                f"{'+'.join(event.from_nodes)} -> {'+'.join(event.to_nodes)} "
                f"({event.reason})"
            )
    lines.append("")
    final = " ".join(
        f"{name}={state}"
        for name, state in sorted(report.final_states.items())
    )
    lines.append(
        f"slo: final states {final or 'ok'}; "
        f"page {report.total_page_seconds():.3f} s "
        f"(warn {sum(report.warn_seconds.values()):.3f} s) "
        f"over {report.fleet_windows} fleet windows"
    )
    for transition in report.transitions:
        lines.append(
            f"  ! {transition.at:.3f} s  {transition.slo}: "
            f"{transition.from_state} -> {transition.to_state} "
            f"({transition.reason})"
        )
    return "\n".join(lines)
