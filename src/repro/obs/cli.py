"""The ``repro obs`` subcommand: run a workload, emit a telemetry snapshot.

Drives one (or all) of the instrumented service substrates with telemetry
enabled, then renders the global registry in the requested format. This is
the quickest way to see the per-(algorithm, direction, level, stage)
counters and the block-decode latency histogram the paper's fleet profiler
reports (Figs. 6, 7, 13).
"""

from __future__ import annotations

import random
import sys
from typing import Callable, Dict, List

from repro import obs

WORKLOADS = ("kvstore", "rpc", "cache", "all")
FORMATS = ("table", "prometheus", "jsonl")


def _payload(rng: random.Random, size: int) -> bytes:
    """Compressible structured record bytes, lightly randomized."""
    out = bytearray()
    while len(out) < size:
        out += b"ts=%010d|service=%s|status=%s|bytes=%06d|region=use1\n" % (
            rng.randrange(10**9),
            rng.choice([b"ads", b"cache", b"kvstore", b"warehouse"]),
            rng.choice([b"ok", b"ok", b"ok", b"retry", b"error"]),
            rng.randrange(10**6),
        )
    return bytes(out[:size])


def run_kvstore_workload(seed: int = 0) -> None:
    """Writes through flush/compaction, then a hot/cold point-read mix."""
    from repro.services.kvstore import KVStore

    rng = random.Random(seed)
    with obs.span("workload.kvstore"):
        store = KVStore(
            compression_level=3,
            block_size=2048,
            memtable_bytes=8 << 10,
            block_cache_bytes=32 << 10,
        )
        keys = [b"user:%06d" % i for i in range(250)]
        with obs.span("kvstore.load"):
            for key in keys:
                store.put(key, _payload(rng, rng.randrange(64, 512)))
            store.flush()
        with obs.span("kvstore.reads"):
            hot = keys[:20]
            for _ in range(150):
                store.get(rng.choice(hot))  # mostly block-cache hits
            for _ in range(50):
                store.get(rng.choice(keys))  # colder: decode misses
            for _ in range(20):
                store.get(b"missing:%06d" % rng.randrange(10**6))


def run_rpc_workload(seed: int = 1) -> None:
    """Compressed RPC messages over the modeled channel."""
    from repro.services.rpc import Channel

    rng = random.Random(seed)
    with obs.span("workload.rpc"):
        channel = Channel(level=1)
        for _ in range(30):
            channel.send(_payload(rng, rng.randrange(256, 8192)))


def run_cache_workload(seed: int = 2) -> None:
    """Dictionary-compressed cache items served to a decompressing client."""
    from repro.services.cache import CacheClient, CacheServer

    rng = random.Random(seed)
    with obs.span("workload.cache"):
        server = CacheServer(level=3, capacity_bytes=64 << 10)
        client = CacheClient(server)
        keys = [b"item:%04d" % i for i in range(120)]
        for key in keys:
            server.set(key, "record", _payload(rng, rng.randrange(96, 1024)))
        for _ in range(200):
            client.get(rng.choice(keys))
        for _ in range(30):
            client.get(b"absent:%04d" % rng.randrange(10**4))


_RUNNERS: Dict[str, Callable[[], None]] = {
    "kvstore": run_kvstore_workload,
    "rpc": run_rpc_workload,
    "cache": run_cache_workload,
}


def render(fmt: str) -> str:
    registry = obs.get_registry()
    if fmt == "prometheus":
        return obs.to_prometheus(registry)
    if fmt == "jsonl":
        return obs.to_jsonl(registry)
    return obs.to_table(registry)


def run_watch_command(args) -> int:
    """``repro obs watch``: replay a recorded timeline JSONL."""
    from repro.obs.watch import WatchError, render_watch, watch_file

    color = not args.no_color
    try:
        if args.input == "-":
            text = render_watch(sys.stdin, color=color)
        else:
            text = watch_file(args.input, color=color)
    except (OSError, WatchError) as error:
        print(f"obs watch: {error}", file=sys.stderr)
        return 1
    print(text)
    return 0


def run_obs_command(args) -> int:
    """Entry point wired into ``repro.cli``."""
    if getattr(args, "obs_command", None) == "watch":
        return run_watch_command(args)
    names: List[str] = (
        list(_RUNNERS) if args.workload == "all" else [args.workload]
    )
    was_enabled = obs.is_enabled()
    obs.reset()
    obs.enable()
    try:
        for name in names:
            _RUNNERS[name]()
    finally:
        if not was_enabled:
            obs.disable()
    text = render(args.format)
    if args.output and args.output != "-":
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.format} snapshot to {args.output}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0
