"""Serving-plane SLOs and the window-by-window alert timeline.

This is where the time-series layer (:mod:`repro.obs.timeseries`) and the
SLO layer (:mod:`repro.obs.slo`) meet the serving plane: the gateway and
the simulator record per-window metrics here, and the four serving SLOs
— shed rate, p99 latency, goodput, compression-ratio-lost — are defined
over those windows. The bicriteria trade the degradation ladder makes
(latency bought with ratio) becomes two SLOs evolving side by side
instead of two numbers at the end of a run.

One deliberate definition: the **shed-rate SLO counts deadline
expirations as sheds**. The front door refusing a request (throttle,
shed) and the queue dropping it at the head because its deadline passed
are the same event from the client's perspective — work offered and not
served — and the queue module itself documents expiry as deadline-based
shedding. Under overload the ladder engages first (pressure-driven
degradation at dequeue), and only when degradation cannot buy enough
latency do deadlines start expiring, so the alert timeline shows
degrade-before-page in exactly that order.

Everything here is a pure function of the recorded windows; a seeded
simulation renders a byte-identical timeline (``repro slo`` certifies
this in CI by diffing two runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.export import json_line
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.slo import (
    OK,
    PAGE,
    WARN,
    AlertTransition,
    BoundSLO,
    EventRateSLO,
    SLO,
    SLOEvaluator,
    metric_total,
)
from repro.obs.timeseries import WindowSnapshot, merge_windows

# -- per-window metric schema (recorded by gateway + simulator) --------------

#: admission verdicts by tenant: verdict in admit/throttle/shed/expired
WINDOW_VERDICTS = "serving_window_verdicts_total"
#: served requests by tenant and rung label
WINDOW_SERVED = "serving_window_served_total"
#: degraded (rung > 0) serves by rung label
WINDOW_DEGRADED = "serving_window_degraded_total"
#: raw-passthrough fallbacks by tenant
WINDOW_RAW = "serving_window_raw_fallbacks_total"
#: byte volumes by kind: in_served/out/in_degraded/out_degraded/on_time
WINDOW_BYTES = "serving_window_bytes_total"
#: end-to-end latency by tenant (plus the "_all" aggregate)
WINDOW_LATENCY = "serving_window_latency_seconds"
#: queue wait, "_all" aggregate only
WINDOW_WAIT = "serving_window_wait_seconds"
#: completion outcomes: result in on_time/tardy
WINDOW_OUTCOMES = "serving_window_outcomes_total"
#: the tenant label value for the cross-tenant aggregate series
ALL_TENANTS = "_all"


def record_window_verdict(
    registry: MetricsRegistry, tenant: str, verdict: str
) -> None:
    registry.counter(WINDOW_VERDICTS).inc(1, tenant=tenant, verdict=verdict)


def record_window_served(
    registry: MetricsRegistry,
    tenant: str,
    rung_label: str,
    degraded: bool,
    raw_fallback: bool,
    bytes_in: int,
    bytes_out: int,
) -> None:
    registry.counter(WINDOW_SERVED).inc(1, tenant=tenant, rung=rung_label)
    volumes = registry.counter(WINDOW_BYTES)
    volumes.inc(bytes_in, kind="in_served")
    volumes.inc(bytes_out, kind="out")
    if degraded:
        registry.counter(WINDOW_DEGRADED).inc(1, rung=rung_label)
        volumes.inc(bytes_in, kind="in_degraded")
        volumes.inc(bytes_out, kind="out_degraded")
    if raw_fallback:
        registry.counter(WINDOW_RAW).inc(1, tenant=tenant)


def record_window_completion(
    registry: MetricsRegistry,
    tenant: str,
    latency_seconds: float,
    wait_seconds: float,
    on_time: bool,
    bytes_in: int,
) -> None:
    latency = registry.histogram(WINDOW_LATENCY)
    latency.observe(latency_seconds, tenant=ALL_TENANTS)
    latency.observe(latency_seconds, tenant=tenant)
    registry.histogram(WINDOW_WAIT).observe(wait_seconds, tenant=ALL_TENANTS)
    registry.counter(WINDOW_OUTCOMES).inc(
        1, result="on_time" if on_time else "tardy"
    )
    if on_time:
        registry.counter(WINDOW_BYTES).inc(bytes_in, kind="on_time")


def _latency_p99(registry: MetricsRegistry, tenant: str) -> Optional[float]:
    hist = registry.get(WINDOW_LATENCY)
    if not isinstance(hist, Histogram) or not hist.count(tenant=tenant):
        return None
    return hist.percentile(99, tenant=tenant)


def window_tenants(registry: MetricsRegistry) -> List[str]:
    """Every tenant with any footprint in the window, sorted.

    Discovery must span *all* tenant-labeled series, not just arrival
    verdicts: on a multi-shard fleet a request's completion can land
    windows after its admission, and a tenant whose replicas finished
    work admitted earlier would otherwise vanish from the drilldown for
    that window (its latency silently folded into ``_all``). Counters
    expose ``samples()``; histograms only ``label_keys()``.
    """
    names = set()
    for counter_name in (WINDOW_VERDICTS, WINDOW_SERVED, WINDOW_RAW):
        metric = registry.get(counter_name)
        if metric is not None:
            for key, __ in metric.samples():
                tenant = dict(key).get("tenant")
                if tenant and tenant != ALL_TENANTS:
                    names.add(tenant)
    hist = registry.get(WINDOW_LATENCY)
    if isinstance(hist, Histogram):
        for key in hist.label_keys():
            tenant = dict(key).get("tenant")
            if tenant and tenant != ALL_TENANTS:
                names.add(tenant)
    return sorted(names)


def _ratio_lost(registry: MetricsRegistry, rung0_ratio: float) -> Optional[float]:
    """Window-local form of ``ServingReport.ratio_lost_to_degradation``."""
    bytes_out = metric_total(registry, WINDOW_BYTES, kind="out")
    if bytes_out <= 0 or rung0_ratio <= 0:
        return None
    in_degraded = metric_total(registry, WINDOW_BYTES, kind="in_degraded")
    if in_degraded <= 0:
        return 0.0
    in_served = metric_total(registry, WINDOW_BYTES, kind="in_served")
    out_degraded = metric_total(registry, WINDOW_BYTES, kind="out_degraded")
    counterfactual_out = bytes_out - out_degraded + in_degraded / rung0_ratio
    if counterfactual_out <= 0:
        return None
    achieved = in_served / bytes_out
    reference = in_served / counterfactual_out
    if reference <= 0:
        return None
    return max(0.0, 1.0 - achieved / reference)


# -- the serving SLO set -----------------------------------------------------


@dataclass(frozen=True)
class ServingSLOConfig:
    """Objectives for the four serving SLOs (the tunable surface)."""

    #: budget fraction of offered requests that may go unserved
    #: (throttled + front-door shed + deadline-expired): a 99.8%
    #: served objective, tight enough that sustained deadline drops
    #: page while the baseline scenario stays silent
    shed_budget: float = 0.002
    #: p99 end-to-end latency bound, seconds
    latency_p99_seconds: float = 0.25
    #: on-time goodput floor, bytes per second of window span
    goodput_floor_bytes_per_second: float = 250_000.0
    #: budget fraction of compression ratio the ladder may give up
    ratio_lost_budget: float = 0.15


class GoodputSLO(SLO):
    """On-time bytes per second of window span must stay above a floor.

    Needs the window *widths* (a rate over time), so it reads the window
    sequence directly instead of going through a merged-registry
    callable. Windows with no completions at all carry no signal (the
    run has not started, or nothing was in flight).
    """

    def __init__(self, name: str, floor_bytes_per_second: float) -> None:
        super().__init__(name, "on-time goodput stays above the floor")
        if floor_bytes_per_second <= 0:
            raise ValueError("goodput floor must be positive")
        self.floor = floor_bytes_per_second

    def burn_rate(self, windows: Sequence[WindowSnapshot]) -> Optional[float]:
        span = sum(w.width for w in windows)
        if span <= 0:
            return None
        merged = merge_windows(windows)
        completions = metric_total(merged, WINDOW_OUTCOMES)
        if completions <= 0:
            return None
        goodput = metric_total(merged, WINDOW_BYTES, kind="on_time") / span
        if goodput <= 0:
            return float("inf")
        return self.floor / goodput


def shed_rate_slo(budget: float) -> EventRateSLO:
    """The shed-rate objective over the window verdict schema.

    Shared by the single-node timeline and the cluster's fleet rollup —
    on merged shard windows the counters simply add, because every
    verdict is recorded on exactly one shard.
    """
    return EventRateSLO(
        "shed_rate",
        bad=lambda reg: (
            metric_total(reg, WINDOW_VERDICTS, verdict="throttle")
            + metric_total(reg, WINDOW_VERDICTS, verdict="shed")
            + metric_total(reg, WINDOW_VERDICTS, verdict="expired")
        ),
        total=lambda reg: (
            metric_total(reg, WINDOW_VERDICTS, verdict="admit")
            + metric_total(reg, WINDOW_VERDICTS, verdict="throttle")
            + metric_total(reg, WINDOW_VERDICTS, verdict="shed")
        ),
        budget=budget,
        description="offered requests refused or dropped on deadline",
    )


def latency_p99_slo(bound_seconds: float) -> BoundSLO:
    """The p99 latency bound over the window latency histogram; merged
    shard histograms fold losslessly, so the fleet reading is exact."""
    return BoundSLO(
        "latency_p99",
        value=lambda reg: _latency_p99(reg, ALL_TENANTS),
        bound=bound_seconds,
        mode="upper",
        description="end-to-end p99 stays under the bound",
    )


def serving_slos(
    config: ServingSLOConfig, rung0_ratio: float
) -> List[SLO]:
    """The serving plane's SLO set, in display order."""
    return [
        shed_rate_slo(config.shed_budget),
        latency_p99_slo(config.latency_p99_seconds),
        GoodputSLO("goodput", config.goodput_floor_bytes_per_second),
        BoundSLO(
            "ratio_lost",
            value=lambda reg, r0=rung0_ratio: _ratio_lost(reg, r0),
            bound=config.ratio_lost_budget,
            mode="upper",
            description="compression ratio given up by the ladder",
        ),
    ]


# -- the timeline ------------------------------------------------------------


@dataclass(frozen=True)
class TenantWindow:
    """One tenant's slice of one window (the drilldown row)."""

    offered: int
    served: int
    p99_ms: Optional[float]


@dataclass(frozen=True)
class TimelineWindow:
    """One closed window distilled to plain data, plus the alert edges
    its evaluation produced."""

    index: int
    start: float
    end: float
    offered: int
    admitted: int
    throttled: int
    shed: int
    expired: int
    served: int
    degraded: int
    raw_fallbacks: int
    on_time: int
    tardy: int
    p99_ms: Optional[float]
    wait_p99_ms: Optional[float]
    goodput_bytes_per_second: float
    ratio_lost: Optional[float]
    #: alert state per SLO after this window's evaluation
    states: Dict[str, str]
    #: headline burn per SLO (the page rule's long-window burn)
    burns: Dict[str, Optional[float]]
    tenants: Dict[str, TenantWindow]
    transitions: Tuple[AlertTransition, ...]


def build_window_row(
    snapshot: WindowSnapshot,
    evaluator: SLOEvaluator,
    rung0_ratio: float,
    transitions: Sequence[AlertTransition],
) -> TimelineWindow:
    reg = snapshot.registry
    verdicts = {
        v: int(metric_total(reg, WINDOW_VERDICTS, verdict=v))
        for v in ("admit", "throttle", "shed", "expired")
    }
    # Tenant rows must partition the window's offered/served totals even
    # when the window is a merge of shard registries (one tenant's
    # traffic spanning replicas): each verdict/serve/completion is
    # recorded on exactly one shard, so the merged counters add without
    # double counting, and discovery spans every tenant-labeled series
    # (a completion-only tenant still gets its row).
    tenants: Dict[str, TenantWindow] = {}
    for tenant in window_tenants(reg):
        p99 = _latency_p99(reg, tenant)
        tenants[tenant] = TenantWindow(
            # arrival verdicts only: "expired" is a second verdict for an
            # already-admitted request, so including it would double-count
            # (tenant rows must partition the window's offered total)
            offered=sum(
                int(metric_total(reg, WINDOW_VERDICTS, tenant=tenant, verdict=v))
                for v in ("admit", "throttle", "shed")
            ),
            served=int(metric_total(reg, WINDOW_SERVED, tenant=tenant)),
            p99_ms=None if p99 is None else p99 * 1e3,
        )
    p99 = _latency_p99(reg, ALL_TENANTS)
    wait = reg.get(WINDOW_WAIT)
    wait_p99 = (
        wait.percentile(99, tenant=ALL_TENANTS)
        if isinstance(wait, Histogram) and wait.count(tenant=ALL_TENANTS)
        else None
    )
    burns: Dict[str, Optional[float]] = {}
    for slo in evaluator.slos:
        rule_burns = evaluator.last_burns.get(slo.name, {})
        burns[slo.name] = next(iter(rule_burns.values()), None)
    return TimelineWindow(
        index=snapshot.index,
        start=snapshot.start,
        end=snapshot.end,
        offered=verdicts["admit"] + verdicts["throttle"] + verdicts["shed"],
        admitted=verdicts["admit"],
        throttled=verdicts["throttle"],
        shed=verdicts["shed"],
        expired=verdicts["expired"],
        served=int(metric_total(reg, WINDOW_SERVED)),
        degraded=int(metric_total(reg, WINDOW_DEGRADED)),
        raw_fallbacks=int(metric_total(reg, WINDOW_RAW)),
        on_time=int(metric_total(reg, WINDOW_OUTCOMES, result="on_time")),
        tardy=int(metric_total(reg, WINDOW_OUTCOMES, result="tardy")),
        p99_ms=None if p99 is None else p99 * 1e3,
        wait_p99_ms=None if wait_p99 is None else wait_p99 * 1e3,
        goodput_bytes_per_second=(
            metric_total(reg, WINDOW_BYTES, kind="on_time") / snapshot.width
            if snapshot.width > 0
            else 0.0
        ),
        ratio_lost=_ratio_lost(reg, rung0_ratio),
        states=dict(evaluator.states()),
        burns=burns,
        tenants=tenants,
        transitions=tuple(transitions),
    )


@dataclass
class ServingTimeline:
    """The full window-by-window record of one simulated run."""

    scenario: str
    seed: int
    scale: float
    window_seconds: float
    config: ServingSLOConfig
    windows: List[TimelineWindow] = field(default_factory=list)
    final_states: Dict[str, str] = field(default_factory=dict)
    page_seconds: Dict[str, float] = field(default_factory=dict)
    warn_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def transitions(self) -> List[AlertTransition]:
        return [t for w in self.windows for t in w.transitions]

    def total_page_seconds(self) -> float:
        return sum(self.page_seconds.values())

    def total_warn_seconds(self) -> float:
        return sum(self.warn_seconds.values())

    def first_transition(
        self, slo: Optional[str] = None, to_state: Optional[str] = None
    ) -> Optional[AlertTransition]:
        for transition in self.transitions:
            if slo is not None and transition.slo != slo:
                continue
            if to_state is not None and transition.to_state != to_state:
                continue
            return transition
        return None

    def worst_state(self) -> str:
        rank = {OK: 0, WARN: 1, PAGE: 2}
        worst = OK
        for window in self.windows:
            for state in window.states.values():
                if rank[state] > rank[worst]:
                    worst = state
        return worst


# -- renderers ---------------------------------------------------------------


def timeline_jsonl(timeline: ServingTimeline) -> str:
    """The flight-recorder form: run header, one line per window,
    one line per alert transition, end summary. Deterministic
    (sorted keys, fixed-precision floats) so seeded runs diff clean;
    ``repro obs watch`` replays this format."""
    lines: List[str] = [
        json_line(
            {
                "kind": "run",
                "plane": "serving",
                "scenario": timeline.scenario,
                "seed": timeline.seed,
                "scale": timeline.scale,
                "window_seconds": timeline.window_seconds,
                "slos": {
                    "shed_budget": timeline.config.shed_budget,
                    "latency_p99_seconds": timeline.config.latency_p99_seconds,
                    "goodput_floor_bytes_per_second": (
                        timeline.config.goodput_floor_bytes_per_second
                    ),
                    "ratio_lost_budget": timeline.config.ratio_lost_budget,
                },
            }
        )
    ]
    for w in timeline.windows:
        lines.append(
            json_line(
                {
                    "kind": "window",
                    "index": w.index,
                    "start": w.start,
                    "end": w.end,
                    "offered": w.offered,
                    "admitted": w.admitted,
                    "throttled": w.throttled,
                    "shed": w.shed,
                    "expired": w.expired,
                    "served": w.served,
                    "degraded": w.degraded,
                    "raw_fallbacks": w.raw_fallbacks,
                    "on_time": w.on_time,
                    "tardy": w.tardy,
                    "p99_ms": w.p99_ms,
                    "wait_p99_ms": w.wait_p99_ms,
                    "goodput_bytes_per_second": w.goodput_bytes_per_second,
                    "ratio_lost": w.ratio_lost,
                    "states": w.states,
                    "burns": w.burns,
                    "tenants": {
                        name: {
                            "offered": t.offered,
                            "served": t.served,
                            "p99_ms": t.p99_ms,
                        }
                        for name, t in w.tenants.items()
                    },
                }
            )
        )
        for t in w.transitions:
            lines.append(
                json_line(
                    {
                        "kind": "alert",
                        "at": t.at,
                        "slo": t.slo,
                        "from": t.from_state,
                        "to": t.to_state,
                        "reason": t.reason,
                    }
                )
            )
    lines.append(
        json_line(
            {
                "kind": "end",
                "windows": len(timeline.windows),
                "final_states": timeline.final_states,
                "page_seconds": timeline.page_seconds,
                "warn_seconds": timeline.warn_seconds,
                "total_page_seconds": timeline.total_page_seconds(),
                "worst_state": timeline.worst_state(),
            }
        )
    )
    return "\n".join(lines) + "\n"


def _fmt_opt(value: Optional[float], spec: str, width: int) -> str:
    if value is None:
        return "-".rjust(width)
    return format(value, spec).rjust(width)


def format_timeline(timeline: ServingTimeline) -> str:
    """Human-readable timeline; byte-identical for identical runs."""
    lines = [
        f"slo timeline -- scenario '{timeline.scenario}', "
        f"seed {timeline.seed}, scale {timeline.scale:g}, "
        f"window {timeline.window_seconds:g} s",
        "",
        f"{'win':>4s} {'span (s)':>15s} {'offer':>6s} {'shed':>5s} "
        f"{'exp':>4s} {'served':>6s} {'degr':>5s} {'p99 ms':>8s} "
        f"{'MB/s':>7s} {'burn':>7s}  states",
    ]
    for w in timeline.windows:
        span = f"[{w.start:6.2f},{w.end:6.2f})"
        worst_burn = max(
            (b for b in w.burns.values() if b is not None), default=None
        )
        hot = sorted(
            (name, state)
            for name, state in w.states.items()
            if state != OK
        )
        states = " ".join(f"{name}={state}" for name, state in hot) or "ok"
        lines.append(
            f"{w.index:4d} {span:>15s} {w.offered:6d} {w.shed:5d} "
            f"{w.expired:4d} {w.served:6d} {w.degraded:5d} "
            f"{_fmt_opt(w.p99_ms, '8.2f', 8)} "
            f"{w.goodput_bytes_per_second / 1e6:7.3f} "
            f"{_fmt_opt(worst_burn, '7.2f', 7)}  {states}"
        )
        for t in w.transitions:
            lines.append(
                f"     ! {t.at:.3f} s  {t.slo}: {t.from_state} -> "
                f"{t.to_state} ({t.reason})"
            )
    lines.append("")
    final = " ".join(
        f"{name}={state}"
        for name, state in sorted(timeline.final_states.items())
    )
    lines.append(f"final states: {final or 'ok'}")
    lines.append(
        f"page seconds: {timeline.total_page_seconds():.3f} "
        f"(warn {timeline.total_warn_seconds():.3f}); "
        f"worst state {timeline.worst_state()}"
    )
    return "\n".join(lines)
