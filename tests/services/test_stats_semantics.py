"""Degenerate-denominator ratio semantics, aligned across services.

Regression tests for the convention set by ``RpcStats.wire_ratio``:
neutral 1.0 only when there has been *no traffic at all*; ``inf`` when
raw bytes went in but zero bytes came out the other side. Before this
was unified, ``CacheStats.memory_ratio`` and ``UseCaseStats.ratio``
reported a misleading 1.0 for the degenerate non-empty case.
"""

import math

import pytest

from repro.codecs import get_codec
from repro.services.cache.server import CacheServer, CacheStats
from repro.services.managed import ManagedCompression, UseCaseStats
from repro.services.rpc import RpcStats


class TestWireRatioConvention:
    """The reference semantics the other two must match."""

    def test_no_traffic_is_neutral(self):
        assert RpcStats().wire_ratio == 1.0

    def test_zero_denominator_with_traffic_is_inf(self):
        stats = RpcStats(raw_bytes=100, wire_bytes=0)
        assert math.isinf(stats.wire_ratio)

    def test_normal_ratio(self):
        assert RpcStats(raw_bytes=100, wire_bytes=25).wire_ratio == 4.0


class TestCacheMemoryRatio:
    def test_no_traffic_is_neutral(self):
        assert CacheStats().memory_ratio == 1.0

    def test_zero_stored_with_raw_traffic_is_inf(self):
        stats = CacheStats(raw_bytes=512, stored_bytes=0)
        assert math.isinf(stats.memory_ratio)

    def test_normal_ratio(self):
        assert CacheStats(raw_bytes=100, stored_bytes=50).memory_ratio == 2.0

    def test_matches_wire_ratio_semantics(self):
        for raw, denom in [(0, 0), (64, 0), (64, 32)]:
            assert (
                CacheStats(raw_bytes=raw, stored_bytes=denom).memory_ratio
                == RpcStats(raw_bytes=raw, wire_bytes=denom).wire_ratio
            )

    def test_integration_fresh_server_is_neutral(self):
        server = CacheServer(codec=get_codec("zstd"))
        assert server.stats.memory_ratio == 1.0


class TestUseCaseRatio:
    def test_no_traffic_is_neutral(self):
        assert UseCaseStats().ratio == 1.0

    def test_zero_compressed_with_raw_traffic_is_inf(self):
        stats = UseCaseStats(raw_bytes=256, compressed_bytes=0)
        assert math.isinf(stats.ratio)

    def test_normal_ratio(self):
        assert UseCaseStats(raw_bytes=300, compressed_bytes=100).ratio == 3.0

    def test_matches_wire_ratio_semantics(self):
        for raw, denom in [(0, 0), (64, 0), (64, 16)]:
            assert (
                UseCaseStats(raw_bytes=raw, compressed_bytes=denom).ratio
                == RpcStats(raw_bytes=raw, wire_bytes=denom).wire_ratio
            )

    def test_integration_fresh_use_case_is_neutral(self):
        service = ManagedCompression(codec=get_codec("zstd"))
        service.register_use_case("fresh")
        assert service.stats("fresh").ratio == 1.0

    def test_integration_real_traffic_is_finite(self):
        service = ManagedCompression(codec=get_codec("zstd"))
        blob = service.compress("logs", b"compressible body " * 50)
        ratio = service.stats("logs").ratio
        assert ratio > 1.0 and math.isfinite(ratio)
        assert service.decompress(blob) == b"compressible body " * 50
