"""Sorted Sequence Table files with block-granular compression.

"each SST file is broken into a number of blocks ... and compressed in a
block granularity. ... To read certain data in a block, the entire block
needs to be decompressed" (Section IV-E). The block index maps first keys
to block offsets so a point read touches exactly one block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.codecs import Compressor, get_codec
from repro.codecs.base import CorruptDataError, StageCounters
from repro.codecs.varint import read_uvarint, write_uvarint
from repro.obs.instrument import record_block_decode, record_quarantine
from repro.obs.state import OBS_STATE
from repro.perfmodel import DEFAULT_MACHINE, MachineModel
from repro.resilience.quarantine import QuarantinedBlock
from repro.services.kvstore.blockcache import BlockCache
from repro.services.kvstore.bloom import BloomFilter

_TOMBSTONE_FLAG = 1


class BlockQuarantinedError(CorruptDataError):
    """A block failed verified-decompress and has been quarantined."""

    def __init__(self, block_index: int, reason: str) -> None:
        super().__init__(f"block {block_index} quarantined: {reason}")
        self.block_index = block_index


@dataclass
class SSTableStats:
    """Compression work performed building/reading one SST."""

    compress_counters: StageCounters = field(default_factory=StageCounters)
    decompress_counters: StageCounters = field(default_factory=StageCounters)
    blocks_written: int = 0
    blocks_read: int = 0
    raw_bytes: int = 0
    stored_bytes: int = 0
    #: reads answered "absent" by the bloom filter without touching a block
    bloom_skips: int = 0
    #: reads served from the decompressed-block cache
    cache_hits: int = 0
    #: blocks that failed verified-decompress, removed from service
    quarantined: List[QuarantinedBlock] = field(default_factory=list)


def _encode_entry(out: bytearray, key: bytes, value: Optional[bytes]) -> None:
    write_uvarint(out, len(key))
    out.extend(key)
    out.append(_TOMBSTONE_FLAG if value is None else 0)
    if value is not None:
        write_uvarint(out, len(value))
        out.extend(value)


def _decode_entries(block: bytes) -> Iterator[Tuple[bytes, Optional[bytes]]]:
    pos = 0
    while pos < len(block):
        klen, pos = read_uvarint(block, pos)
        key = block[pos : pos + klen]
        pos += klen
        flag = block[pos]
        pos += 1
        if flag & _TOMBSTONE_FLAG:
            yield key, None
        else:
            vlen, pos = read_uvarint(block, pos)
            yield key, block[pos : pos + vlen]
            pos += vlen


class SSTable:
    """One immutable sorted file: compressed blocks + first-key index."""

    def __init__(
        self,
        blocks: List[bytes],
        index: List[bytes],
        codec_name: str,
        level: int,
        stats: SSTableStats,
    ) -> None:
        self._blocks = blocks
        self._index = index  # first key of each block
        self.codec_name = codec_name
        self.level = level
        self.stats = stats
        self.entry_count = 0  # filled by build()
        #: backing file name when owned by a durable store (else None)
        self.file_name: Optional[str] = None
        self._cache: Optional[BlockCache] = None
        self._bloom: Optional[BloomFilter] = None
        #: indices of blocks that failed verified-decompress; never re-decoded
        self._poisoned: set = set()

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        entries: List[Tuple[bytes, Optional[bytes]]],
        codec: Optional[Compressor] = None,
        level: int = 1,
        block_size: int = 16384,
        machine: MachineModel = DEFAULT_MACHINE,
        bloom_bits_per_key: int = 10,
        block_cache: Optional[BlockCache] = None,
    ) -> "SSTable":
        """Build an SST from sorted (key, value-or-tombstone) entries.

        ``bloom_bits_per_key=0`` disables the bloom filter; ``block_cache``
        (shared across tables) serves repeated reads without decompression.
        """
        codec = codec if codec is not None else get_codec("zstd")
        stats = SSTableStats()
        blocks: List[bytes] = []
        index: List[bytes] = []
        current = bytearray()
        first_key: Optional[bytes] = None
        previous_key: Optional[bytes] = None

        def flush_block() -> None:
            nonlocal current, first_key
            if not current:
                return
            raw = bytes(current)
            result = codec.compress(raw, level)
            stats.compress_counters.merge(result.counters)
            stats.blocks_written += 1
            stats.raw_bytes += len(raw)
            stats.stored_bytes += len(result.data)
            blocks.append(result.data)
            index.append(first_key)
            current = bytearray()
            first_key = None

        for key, value in entries:
            if previous_key is not None and key < previous_key:
                raise ValueError("entries must be sorted by key")
            previous_key = key
            if first_key is None:
                first_key = key
            _encode_entry(current, key, value)
            if len(current) >= block_size:
                flush_block()
        flush_block()
        table = cls(blocks, index, codec.name, level, stats)
        table.entry_count = len(entries)
        table._machine = machine
        table._codec = codec
        table._cache = block_cache
        if bloom_bits_per_key > 0 and entries:
            bloom = BloomFilter(len(entries), bloom_bits_per_key)
            for key, __ in entries:
                bloom.add(key)
            table._bloom = bloom
        else:
            table._bloom = None
        return table

    # -- reads ----------------------------------------------------------------

    def _locate_block(self, key: bytes) -> Optional[int]:
        """Index of the block that could contain ``key`` (binary search)."""
        if not self._index or key < self._index[0]:
            return None
        low, high = 0, len(self._index) - 1
        while low < high:
            mid = (low + high + 1) // 2
            if self._index[mid] <= key:
                low = mid
            else:
                high = mid - 1
        return low

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes], float]:
        """Point lookup: (found, value, block_decode_seconds).

        A corrupt block is quarantined and reported as *not found* here;
        :meth:`KVStore.get <repro.services.kvstore.db.KVStore.get>` then
        falls through to older tables -- the re-read-from-backing-store
        recovery, since LSM redundancy often still holds the key.
        """
        if self._bloom is not None and not self._bloom.might_contain(key):
            self.stats.bloom_skips += 1
            return False, None, 0.0
        block_index = self._locate_block(key)
        if block_index is None:
            return False, None, 0.0
        try:
            raw, decode_seconds = self._load_block(block_index)
        except CorruptDataError:
            return False, None, 0.0
        try:
            entries = list(_decode_entries(raw))
        except (CorruptDataError, IndexError):
            # the block decoded (checksum luck) but its entry framing is
            # gibberish: silent corruption, quarantined like loud corruption
            self._quarantine(block_index, "entry framing corrupt")
            return False, None, decode_seconds
        for entry_key, value in entries:
            if entry_key == key:
                return True, value, decode_seconds
            if entry_key > key:
                break
        return False, None, decode_seconds

    def _load_block(self, block_index: int) -> Tuple[bytes, float]:
        """Fetch one decompressed block, through the block cache if any.

        Verified-decompress: a block that fails validation is quarantined
        (recorded once, never re-decoded) and raises
        :class:`BlockQuarantinedError`.
        """
        if block_index in self._poisoned:
            raise BlockQuarantinedError(block_index, "previously quarantined")
        if self._cache is not None:
            cached = self._cache.get((id(self), block_index))
            if cached is not None:
                self.stats.cache_hits += 1
                return cached, 0.0
        try:
            result = self._codec.decompress(self._blocks[block_index])
        except CorruptDataError as exc:
            self._quarantine(block_index, str(exc))
            raise BlockQuarantinedError(block_index, str(exc)) from exc
        self.stats.decompress_counters.merge(result.counters)
        self.stats.blocks_read += 1
        decode_seconds = self._machine.decompress_seconds(
            self.codec_name, result.counters
        )
        if OBS_STATE.enabled:
            record_block_decode(self.codec_name, decode_seconds)
        if self._cache is not None:
            self._cache.put((id(self), block_index), result.data)
        return result.data, decode_seconds

    def _quarantine(self, block_index: int, reason: str) -> None:
        self._poisoned.add(block_index)
        self.stats.quarantined.append(
            QuarantinedBlock(
                source="kvstore.sst",
                identifier=f"block {block_index}",
                codec=self.codec_name,
                reason=reason,
            )
        )
        if OBS_STATE.enabled:
            record_quarantine("kvstore.sst")

    def scan(self) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Iterate every entry in key order (used by compaction).

        Quarantined blocks are skipped: compaction carries the surviving
        data forward instead of dying on the damaged block.
        """
        for block_index in range(len(self._blocks)):
            if block_index in self._poisoned:
                continue
            try:
                result = self._codec.decompress(self._blocks[block_index])
                entries = list(_decode_entries(result.data))
            except (CorruptDataError, IndexError) as exc:
                self._quarantine(block_index, str(exc) or "entry framing corrupt")
                continue
            self.stats.decompress_counters.merge(result.counters)
            self.stats.blocks_read += 1
            yield from entries

    def scan_range(
        self, start: bytes, end: bytes
    ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Iterate entries with ``start <= key < end``.

        Only blocks overlapping the range are decompressed -- the range-read
        analogue of the point-read block economics in Fig. 13. Quarantined
        blocks are skipped.
        """
        if start >= end or not self._index:
            return
        first = self._locate_block(start)
        first = 0 if first is None else first
        for block_index in range(first, len(self._blocks)):
            if self._index[block_index] >= end:
                break
            try:
                raw, __ = self._load_block(block_index)
                entries = list(_decode_entries(raw))
            except CorruptDataError:
                continue
            except IndexError:
                self._quarantine(block_index, "entry framing corrupt")
                continue
            for key, value in entries:
                if key >= end:
                    return
                if key >= start:
                    yield key, value

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def quarantined_count(self) -> int:
        return len(self._poisoned)

    # -- fault-injection support ----------------------------------------------

    def block_bytes(self, block_index: int) -> bytes:
        """The stored (compressed) bytes of one block."""
        return self._blocks[block_index]

    def replace_block(self, block_index: int, data: bytes) -> None:
        """Overwrite one stored block in place (media-decay injection).

        Used by :func:`repro.faults.scrub_sstable` to model permanent
        storage corruption; any cached decode and poisoned marking for the
        block is dropped so the next read re-verifies the new bytes.
        """
        self._blocks[block_index] = bytes(data)
        self._poisoned.discard(block_index)
        if self._cache is not None:
            # drop the stale plaintext so reads see the damaged bytes
            self._cache.invalidate((id(self), block_index))

    @property
    def stored_bytes(self) -> int:
        return self.stats.stored_bytes

    @property
    def key_range(self) -> Tuple[bytes, bytes]:
        """(first key, last block's first key) -- coarse range bound."""
        return self._index[0], self._index[-1]

    # -- file serialization ----------------------------------------------------

    _FILE_MAGIC = b"RSST"

    def to_bytes(self) -> bytes:
        """Serialize the SST as a self-contained file image.

        Layout: magic | codec name | level | entry count | per block
        (first key | compressed block). Blooms are not stored: they need
        every key, so ``from_bytes(rebuild_bloom=True)`` reconstructs one
        with a full scan, as storage engines do when the filter block is
        missing.
        """
        out = bytearray(self._FILE_MAGIC)
        name = self.codec_name.encode()
        out.append(len(name))
        out.extend(name)
        write_uvarint(out, self.level + 64)  # levels can be negative
        write_uvarint(out, self.entry_count)
        write_uvarint(out, len(self._blocks))
        for first_key, block in zip(self._index, self._blocks):
            write_uvarint(out, len(first_key))
            out.extend(first_key)
            write_uvarint(out, len(block))
            out.extend(block)
        return bytes(out)

    @classmethod
    def from_bytes(
        cls,
        payload: bytes,
        machine: MachineModel = DEFAULT_MACHINE,
        block_cache: Optional[BlockCache] = None,
        rebuild_bloom: bool = False,
        bloom_bits_per_key: int = 10,
        verify_blocks: bool = False,
    ) -> "SSTable":
        """Load an SST file image produced by :meth:`to_bytes`.

        With ``verify_blocks=True`` every block is decode-verified at load
        time (an RocksDB ``paranoid_checks``-style scrub); blocks that fail
        are quarantined up front instead of at first read.
        """
        from repro.codecs.base import CorruptDataError

        if payload[:4] != cls._FILE_MAGIC:
            raise CorruptDataError("bad SST file magic")
        pos = 4
        name_len = payload[pos]
        pos += 1
        codec_name = payload[pos : pos + name_len].decode()
        pos += name_len
        level_biased, pos = read_uvarint(payload, pos)
        entry_count, pos = read_uvarint(payload, pos)
        block_count, pos = read_uvarint(payload, pos)
        index: List[bytes] = []
        blocks: List[bytes] = []
        for __ in range(block_count):
            key_len, pos = read_uvarint(payload, pos)
            index.append(payload[pos : pos + key_len])
            pos += key_len
            block_len, pos = read_uvarint(payload, pos)
            if pos + block_len > len(payload):
                raise CorruptDataError("truncated SST file")
            blocks.append(payload[pos : pos + block_len])
            pos += block_len
        table = cls(blocks, index, codec_name, level_biased - 64, SSTableStats())
        table.entry_count = entry_count
        table._machine = machine
        table._codec = get_codec(codec_name)
        table._cache = block_cache
        if verify_blocks:
            for block_index, block in enumerate(blocks):
                try:
                    table._codec.decompress(block)
                except CorruptDataError as exc:
                    table._quarantine(block_index, f"load-time scrub: {exc}")
        if rebuild_bloom and entry_count:
            bloom = BloomFilter(entry_count, bloom_bits_per_key)
            for key, __ in table.scan():
                bloom.add(key)
            table._bloom = bloom
        return table
