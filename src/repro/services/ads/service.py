"""Ads inference front-end: per-model request compression over a channel."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.codecs import Compressor, get_codec
from repro.corpus.embeddings import ADS_MODELS, generate_ads_request
from repro.perfmodel import DEFAULT_MACHINE, MachineModel
from repro.services.rpc import Channel


@dataclass
class AdsRequestStats:
    """Per-model results of serving a batch of inference requests."""

    model: str
    requests: int = 0
    raw_bytes: int = 0
    wire_bytes: int = 0
    latencies_seconds: List[float] = field(default_factory=list)
    inference_cycles: float = 0.0
    compression_cycles: float = 0.0

    @property
    def wire_ratio(self) -> float:
        return self.raw_bytes / self.wire_bytes if self.wire_bytes else 1.0

    @property
    def p99_latency_seconds(self) -> float:
        if not self.latencies_seconds:
            return 0.0
        ordered = sorted(self.latencies_seconds)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    @property
    def mean_latency_seconds(self) -> float:
        if not self.latencies_seconds:
            return 0.0
        return sum(self.latencies_seconds) / len(self.latencies_seconds)

    @property
    def zstd_cycle_share(self) -> float:
        total = self.inference_cycles + self.compression_cycles
        return self.compression_cycles / total if total else 0.0


class AdsInferenceService:
    """Serves ranking requests whose payloads travel compressed.

    ``inference_cycles_per_byte`` models the ranking model's own compute so
    that compression's share of service cycles (Fig. 6) and the latency
    budget both come out of one account.
    """

    def __init__(
        self,
        codec: Optional[Compressor] = None,
        level: int = 1,
        compress_requests: bool = True,
        bandwidth_bytes_per_second: float = 1.25e9,
        inference_cycles_per_byte: float = 170.0,
        machine: MachineModel = DEFAULT_MACHINE,
    ) -> None:
        self.codec = codec if codec is not None else get_codec("zstd")
        self.level = level
        self.machine = machine
        self.inference_cycles_per_byte = inference_cycles_per_byte
        self.channel = Channel(
            bandwidth_bytes_per_second=bandwidth_bytes_per_second,
            codec=self.codec,
            level=level,
            compress=compress_requests,
            machine=machine,
        )

    def serve_batch(
        self, model: str, request_count: int, seed: int = 0
    ) -> AdsRequestStats:
        """Generate and serve ``request_count`` requests for ``model``."""
        if model not in ADS_MODELS:
            raise ValueError(f"unknown ads model {model!r}")
        stats = AdsRequestStats(model=model)
        for index in range(request_count):
            payload = generate_ads_request(model, seed=seed + index)
            before_comp = self.channel.stats.compress_counters.copy()
            before_decomp = self.channel.stats.decompress_counters.copy()
            received, elapsed = self.channel.send(payload)
            if received != payload:
                raise AssertionError("request corrupted in transit")
            inference_cycles = self.inference_cycles_per_byte * len(payload)
            elapsed += inference_cycles / self.machine.frequency_hz
            stats.requests += 1
            stats.raw_bytes += len(payload)
            stats.latencies_seconds.append(elapsed)
            stats.inference_cycles += inference_cycles
            if self.channel.compress:
                comp_cycles = self.machine.compress_cycles(
                    self.codec.name,
                    _delta(before_comp, self.channel.stats.compress_counters),
                )
                decomp_cycles = self.machine.decompress_cycles(
                    self.codec.name,
                    _delta(before_decomp, self.channel.stats.decompress_counters),
                )
                stats.compression_cycles += comp_cycles + decomp_cycles
        stats.wire_bytes = self.channel.stats.wire_bytes
        return stats


def _delta(before, after):
    """Counter difference (after - before) as a new counter set."""
    from dataclasses import fields

    from repro.codecs.base import StageCounters

    result = StageCounters()
    for f in fields(StageCounters):
        setattr(result, f.name, getattr(after, f.name) - getattr(before, f.name))
    return result
