"""Declarative SLOs with multi-window, multi-burn-rate alerting.

An SLO here is a *query over a span of windows* (from
:mod:`repro.obs.timeseries`) reduced to one number, the **burn rate**:
how fast the objective's error budget is being consumed, normalized so
``1.0`` means "exactly at the objective". Two flavors cover everything
the serving and chaos planes need:

- :class:`EventRateSLO` — "at most ``budget`` of events may be bad"
  (shed rate, failure rate). Burn = observed bad fraction / budget.
- :class:`BoundSLO` — "this signal must stay below/above a bound"
  (p99 latency, goodput, compression-ratio-lost). Burn = signal / bound
  for upper bounds, bound / signal for lower bounds.

Alerting follows the SRE multi-window multi-burn-rate recipe: a rule
fires only when the burn rate exceeds its threshold over *both* a long
window (the condition is significant) and a short window (it is still
happening), so a brief spike cannot page and a slow leak cannot hide.
Fast rules carry high thresholds and severity PAGE; slow rules carry low
thresholds and severity WARN. Each SLO owns an
:class:`AlertStateMachine` stepping OK → WARN → PAGE, with hysteresis on
the way down (``clear_after`` consecutive quiet evaluations per step) so
alert state does not flap at the threshold.

Everything is a pure function of the recorded windows, so a seeded
simulation renders a byte-identical alert timeline — the property
``repro slo`` certifies in CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import WindowSnapshot, merge_windows

#: alert states, in increasing severity
OK = "ok"
WARN = "warn"
PAGE = "page"
_SEVERITY_RANK = {OK: 0, WARN: 1, PAGE: 2}


@dataclass(frozen=True)
class BurnRule:
    """One (long window, short window, threshold) → severity rule."""

    severity: str
    #: windows in the long (significance) view
    long_windows: int
    #: windows in the short (recency) view; must be <= long_windows
    short_windows: int
    #: burn rate both views must reach for the rule to fire
    threshold: float

    def __post_init__(self) -> None:
        if self.severity not in (WARN, PAGE):
            raise ValueError(f"severity must be warn or page, got {self.severity!r}")
        if self.short_windows < 1 or self.long_windows < self.short_windows:
            raise ValueError("need 1 <= short_windows <= long_windows")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


#: the SRE fast/slow pairing, scaled to simulation-length runs: a fast
#: burn (budget gone in ~1/6 of the rules' long view) pages, a slow
#: sustained burn warns
DEFAULT_RULES: Tuple[BurnRule, ...] = (
    BurnRule(PAGE, long_windows=4, short_windows=2, threshold=6.0),
    BurnRule(WARN, long_windows=12, short_windows=3, threshold=1.5),
)


def metric_total(registry: MetricsRegistry, name: str, **match) -> float:
    """Sum a metric's samples whose labels match every ``match`` pair —
    the query primitive SLO signal callables are built from."""
    metric = registry.get(name)
    if metric is None:
        return 0.0
    wanted = {k: str(v) for k, v in match.items()}
    total = 0.0
    for key, value in metric.samples():
        labels = dict(key)
        if all(labels.get(k) == v for k, v in wanted.items()):
            total += value
    return total


class SLO:
    """Base: a named objective reducible to a burn rate over windows."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description

    def burn_rate(self, windows: Sequence[WindowSnapshot]) -> Optional[float]:
        """Burn over ``windows`` (1.0 = at the objective); None = no signal."""
        raise NotImplementedError


class EventRateSLO(SLO):
    """At most ``budget`` (fraction) of events may be bad."""

    def __init__(
        self,
        name: str,
        bad: Callable[[MetricsRegistry], float],
        total: Callable[[MetricsRegistry], float],
        budget: float,
        description: str = "",
    ) -> None:
        super().__init__(name, description)
        if not 0 < budget < 1:
            raise ValueError("budget must be a fraction in (0, 1)")
        self.bad = bad
        self.total = total
        self.budget = budget

    def burn_rate(self, windows: Sequence[WindowSnapshot]) -> Optional[float]:
        merged = merge_windows(windows)
        total = self.total(merged)
        if total <= 0:
            return None
        return (self.bad(merged) / total) / self.budget


class BoundSLO(SLO):
    """A scalar signal must stay under (or over) a bound."""

    def __init__(
        self,
        name: str,
        value: Callable[[MetricsRegistry], Optional[float]],
        bound: float,
        mode: str = "upper",
        description: str = "",
    ) -> None:
        super().__init__(name, description)
        if bound <= 0:
            raise ValueError("bound must be positive")
        if mode not in ("upper", "lower"):
            raise ValueError("mode must be 'upper' or 'lower'")
        self.value = value
        self.bound = bound
        self.mode = mode

    def burn_rate(self, windows: Sequence[WindowSnapshot]) -> Optional[float]:
        signal = self.value(merge_windows(windows))
        if signal is None:
            return None
        if self.mode == "upper":
            return signal / self.bound
        if signal <= 0:
            return float("inf")
        return self.bound / signal


@dataclass(frozen=True)
class AlertTransition:
    """One state-machine edge, stamped with the evaluation time."""

    at: float
    slo: str
    from_state: str
    to_state: str
    reason: str


class AlertStateMachine:
    """OK → WARN → PAGE with step-down hysteresis.

    Escalation is immediate (a PAGE rule firing from OK jumps straight
    to PAGE). De-escalation steps down one severity only after
    ``clear_after`` consecutive evaluations in which nothing at or above
    the current state fired, so one quiet window cannot clear a page.
    """

    def __init__(self, slo_name: str, clear_after: int = 2) -> None:
        if clear_after < 1:
            raise ValueError("clear_after must be at least 1")
        self.slo_name = slo_name
        self.clear_after = clear_after
        self.state = OK
        self._quiet = 0
        #: cumulative seconds spent in each state (by evaluation spans)
        self.seconds_in: Dict[str, float] = {OK: 0.0, WARN: 0.0, PAGE: 0.0}
        self._entered_at: Optional[float] = None

    def _account(self, at: float) -> None:
        if self._entered_at is not None:
            self.seconds_in[self.state] += max(0.0, at - self._entered_at)
        self._entered_at = at

    def evaluate(
        self, at: float, fired: Optional[str], reason: str = ""
    ) -> Optional[AlertTransition]:
        """Feed one evaluation; returns the transition, if any.

        ``fired`` is the highest severity whose rule fired (None = all
        quiet). Time spent in the outgoing state is accounted before the
        edge, so ``seconds_in`` always sums to the evaluated span.
        """
        self._account(at)
        current = _SEVERITY_RANK[self.state]
        incoming = _SEVERITY_RANK.get(fired, 0) if fired else 0
        if incoming > current:
            previous = self.state
            self.state = fired  # escalate immediately
            self._quiet = 0
            return AlertTransition(at, self.slo_name, previous, self.state, reason)
        if incoming == current and current > 0:
            self._quiet = 0  # still burning at this severity
            return None
        if current == 0:
            return None
        self._quiet += 1
        if self._quiet < self.clear_after:
            return None
        previous = self.state
        self.state = WARN if self.state == PAGE else OK
        self._quiet = 0
        return AlertTransition(
            at,
            self.slo_name,
            previous,
            self.state,
            reason or f"quiet for {self.clear_after} evaluations",
        )

    def finish(self, at: float) -> None:
        """Account state time up to ``at`` (end of run)."""
        self._account(at)


class SLOEvaluator:
    """Evaluate a set of SLOs window-by-window, accumulating the timeline."""

    def __init__(
        self,
        slos: Sequence[SLO],
        rules: Sequence[BurnRule] = DEFAULT_RULES,
        clear_after: int = 2,
    ) -> None:
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.slos = list(slos)
        #: rules evaluated PAGE-first so ``fired`` is the highest severity
        self.rules = sorted(
            rules, key=lambda r: -_SEVERITY_RANK[r.severity]
        )
        self.machines: Dict[str, AlertStateMachine] = {
            s.name: AlertStateMachine(s.name, clear_after=clear_after)
            for s in slos
        }
        self.transitions: List[AlertTransition] = []
        #: last burn rate per (slo, rule index), for reporting
        self.last_burns: Dict[str, Dict[str, Optional[float]]] = {}

    def _fired(
        self, slo: SLO, windows: Sequence[WindowSnapshot]
    ) -> Tuple[Optional[str], str, Dict[str, Optional[float]]]:
        burns: Dict[str, Optional[float]] = {}
        for rule in self.rules:
            long_burn = slo.burn_rate(windows[-rule.long_windows:])
            short_burn = slo.burn_rate(windows[-rule.short_windows:])
            key = f"{rule.severity}:{rule.long_windows}w/{rule.short_windows}w"
            burns[key] = long_burn
            if (
                long_burn is not None
                and short_burn is not None
                and long_burn >= rule.threshold
                and short_burn >= rule.threshold
            ):
                reason = (
                    f"burn {long_burn:.2f} over {rule.long_windows}w and "
                    f"{short_burn:.2f} over {rule.short_windows}w "
                    f">= {rule.threshold:g}"
                )
                return rule.severity, reason, burns
        return None, "", burns

    def on_window(
        self, windows: Sequence[WindowSnapshot], at: float
    ) -> List[AlertTransition]:
        """Evaluate after a window closes. ``windows`` is the series so
        far (oldest first); ``at`` is the closed window's end time."""
        if not windows:
            return []
        edges: List[AlertTransition] = []
        for slo in self.slos:
            fired, reason, burns = self._fired(slo, windows)
            self.last_burns[slo.name] = burns
            edge = self.machines[slo.name].evaluate(at, fired, reason)
            if edge is not None:
                edges.append(edge)
        self.transitions.extend(edges)
        return edges

    def finish(self, at: float) -> None:
        for machine in self.machines.values():
            machine.finish(at)

    def states(self) -> Dict[str, str]:
        return {name: m.state for name, m in self.machines.items()}

    def seconds_in(self, state: str) -> Dict[str, float]:
        return {
            name: m.seconds_in.get(state, 0.0)
            for name, m in self.machines.items()
        }

    def total_page_seconds(self) -> float:
        return sum(self.seconds_in(PAGE).values())

    def worst_state(self) -> str:
        rank = max(
            (_SEVERITY_RANK[m.state] for m in self.machines.values()),
            default=0,
        )
        for state, value in _SEVERITY_RANK.items():
            if value == rank:
                return state
        return OK
