"""Multi-frame stream contract: concatenated frames decode to concatenated
contents.

Real-world zstd/LZ4 tools and RFC 1952 gzip all define this, and the
parallel engine leans on it -- its output is nothing but independent
frames laid end to end. These tests pin the contract for every codec
directly at the codec layer, independent of the engine.
"""

import pytest

from repro.codecs import available_codecs, get_codec, train_dictionary
from repro.codecs.base import CorruptDataError, OutputLimitExceeded

_PIECES = [b"alpha " * 100, b"", b"beta" * 50, b"\x00" * 256, b"tail"]


@pytest.mark.parametrize("codec_name", available_codecs())
def test_concatenated_frames_decode_to_concatenated_contents(codec_name):
    codec = get_codec(codec_name)
    stream = b"".join(codec.compress(piece, 1).data for piece in _PIECES)
    result = codec.decompress(stream)
    assert result.data == b"".join(_PIECES)


@pytest.mark.parametrize("codec_name", available_codecs())
def test_two_frames_different_levels(codec_name):
    codec = get_codec(codec_name)
    first = codec.compress(b"x" * 1000, codec.min_level).data
    second = codec.compress(b"y" * 1000, codec.max_level).data
    assert codec.decompress(first + second).data == b"x" * 1000 + b"y" * 1000


def test_concatenated_dictionary_frames():
    zstd = get_codec("zstd")
    samples = [b"GET /api/v1/users/%d HTTP/1.1" % i for i in range(40)]
    dictionary = train_dictionary(samples, max_size=1024).content
    pieces = [b"GET /api/v1/users/7 HTTP/1.1", b"GET /api/v1/users/13 HTTP/1.1"]
    stream = b"".join(
        zstd.compress(piece, 3, dictionary=dictionary).data for piece in pieces
    )
    result = zstd.decompress(stream, dictionary=dictionary)
    assert result.data == b"".join(pieces)


@pytest.mark.parametrize("codec_name", available_codecs())
def test_output_limit_is_cumulative_across_frames(codec_name):
    """The budget bounds the whole stream, not each frame separately."""
    codec = get_codec(codec_name)
    frame = codec.compress(b"z" * 600, 1).data
    # One frame fits, two frames together must not.
    assert codec.decompress(frame, max_output_bytes=600).data == b"z" * 600
    with pytest.raises(OutputLimitExceeded):
        codec.decompress(frame + frame, max_output_bytes=1000)


@pytest.mark.parametrize("codec_name", available_codecs())
def test_garbage_between_frames_raises(codec_name):
    codec = get_codec(codec_name)
    frame = codec.compress(b"payload" * 30, 1).data
    with pytest.raises(CorruptDataError):
        codec.decompress(frame + b"\xde\xad\xbe\xef" + frame)


@pytest.mark.parametrize("codec_name", available_codecs())
def test_truncated_second_frame_raises(codec_name):
    codec = get_codec(codec_name)
    frame = codec.compress(b"payload" * 30, 1).data
    with pytest.raises(CorruptDataError):
        codec.decompress(frame + frame[: len(frame) // 2])


@pytest.mark.parametrize("codec_name", available_codecs())
def test_frame_counters_accumulate(codec_name):
    """Decoding two frames does at least the stage work of each alone."""
    codec = get_codec(codec_name)
    frame = codec.compress(b"counter" * 64, 1).data
    single = codec.decompress(frame).counters
    double = codec.decompress(frame + frame).counters
    assert double.bytes_out == 2 * single.bytes_out
    assert double.bytes_in == 2 * single.bytes_in
