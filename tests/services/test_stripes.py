"""Striped ORC file tests: row-range and column pushdown."""

import numpy as np
import pytest

from repro.codecs.base import CorruptDataError
from repro.corpus import generate_table
from repro.services.warehouse.stripes import StripedOrcReader, StripedOrcWriter


@pytest.fixture(scope="module")
def striped():
    table = generate_table(2500, seed=81)
    writer = StripedOrcWriter(level=1, stripe_rows=500)
    return writer.write(table), table


def _tables_equal(a, b):
    assert set(a) == set(b)
    for name in a:
        if isinstance(a[name], list):
            assert a[name] == b[name], name
        else:
            assert np.array_equal(np.asarray(a[name]), np.asarray(b[name])), name


class TestStripedRoundtrip:
    def test_full_read(self, striped):
        payload, table = striped
        result = StripedOrcReader().read(payload)
        _tables_equal(result, table)

    def test_row_count(self, striped):
        payload, __ = striped
        assert StripedOrcReader().row_count(payload) == 2500

    def test_row_range_exact(self, striped):
        payload, table = striped
        result = StripedOrcReader().read(payload, row_range=(700, 1300))
        expected = {
            name: values[700:1300] if isinstance(values, list) else values[700:1300]
            for name, values in table.items()
        }
        _tables_equal(result, expected)

    def test_range_within_one_stripe(self, striped):
        payload, table = striped
        result = StripedOrcReader().read(payload, row_range=(510, 520))
        assert len(next(iter(result.values()))) == 10

    def test_range_skips_stripes(self, striped):
        payload, __ = striped
        full_reader = StripedOrcReader()
        full_reader.read(payload)
        narrow_reader = StripedOrcReader()
        narrow_reader.read(payload, row_range=(0, 400))
        assert narrow_reader.blocks_decompressed < full_reader.blocks_decompressed

    def test_column_and_row_pushdown_compose(self, striped):
        payload, table = striped
        result = StripedOrcReader().read(
            payload, columns=["event_id"], row_range=(1000, 1500)
        )
        assert set(result) == {"event_id"}
        assert np.array_equal(
            result["event_id"], np.asarray(table["event_id"][1000:1500])
        )

    def test_invalid_row_range(self, striped):
        payload, __ = striped
        with pytest.raises(ValueError):
            StripedOrcReader().read(payload, row_range=(0, 99999))
        with pytest.raises(ValueError):
            StripedOrcReader().read(payload, row_range=(-1, 5))

    def test_bad_magic(self):
        with pytest.raises(CorruptDataError):
            StripedOrcReader().read(b"WRONGstuff")

    def test_invalid_stripe_rows(self):
        with pytest.raises(ValueError):
            StripedOrcWriter(stripe_rows=0)

    def test_empty_range_returns_empty_columns(self, striped):
        payload, __ = striped
        result = StripedOrcReader().read(payload, row_range=(100, 100))
        assert result == {}
