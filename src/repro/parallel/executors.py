"""Executors: where parallel-engine tasks actually run.

Two implementations of one tiny contract -- ``map(fn, items)`` preserving
item order -- so everything above the executor is oblivious to *how* work
is distributed:

- :class:`SerialExecutor` runs tasks in-process, in order. It is the
  fallback when a pool cannot be created (restricted sandboxes) and the
  reference for determinism tests: pool output must be byte-identical to
  serial output.
- :class:`ProcessPoolExecutor` fans tasks out over a
  ``multiprocessing.Pool``. Order is still preserved (``Pool.map``
  collates results by input index), so result merging is deterministic
  regardless of which worker finished first.

Task functions must be module-level (picklable) and must not rely on
parent-process mutable state: on fork platforms they see a snapshot, on
spawn platforms a fresh interpreter.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 mean "all cores", else as given."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


class SerialExecutor:
    """In-process, in-order execution. The determinism reference."""

    jobs = 1
    kind = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]

    def close(self) -> None:  # symmetric with the pool executor
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProcessPoolExecutor:
    """``multiprocessing.Pool`` behind the executor contract.

    The pool is created lazily on first :meth:`map` so constructing the
    executor is free, and creation failures (sandboxes without fork/sem
    support) degrade to serial execution instead of erroring -- the
    parallel path must never be *less* available than the serial one.
    """

    kind = "pool"

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise ValueError("ProcessPoolExecutor needs jobs >= 2; use SerialExecutor")
        self.jobs = jobs
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._fallback: Optional[SerialExecutor] = None

    def _ensure_pool(self) -> None:
        if self._pool is not None or self._fallback is not None:
            return
        try:
            self._pool = multiprocessing.get_context().Pool(self.jobs)
        except (OSError, ValueError, ImportError):
            # No process support here (common in locked-down containers):
            # degrade silently to the in-process executor.
            self._fallback = SerialExecutor()

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        self._ensure_pool()
        if self._fallback is not None:
            return self._fallback.map(fn, items)
        assert self._pool is not None
        return self._pool.map(fn, list(items), chunksize=1)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessPoolExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_executor(jobs: Optional[int]):
    """Executor for ``jobs`` workers: serial at 1, a process pool above."""
    resolved = resolve_jobs(jobs)
    if resolved <= 1:
        return SerialExecutor()
    return ProcessPoolExecutor(resolved)
