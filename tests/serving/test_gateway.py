"""CompressionGateway: admission, degradation, breakers, raw fallback."""

import pytest

from repro import obs
from repro.faults import FaultInjector, FaultPlan, FaultSpec, FaultyCodec
from repro.codecs import get_codec
from repro.obs.instrument import SERVING_DEGRADED, SERVING_REQUESTS
from repro.resilience.clock import SimClock
from repro.serving.degrade import DegradationLadder, Rung
from repro.serving.gateway import RAW_COPY_BANDWIDTH, CompressionGateway
from repro.serving.queue import ServingRequest
from repro.core.config import CompressionConfig


def _ladder():
    def rung(algorithm, level, spb, ratio, cost):
        return Rung(
            config=CompressionConfig(algorithm=algorithm, level=level),
            seconds_per_byte=spb,
            ratio=ratio,
            total_cost=cost,
        )

    return DegradationLadder(
        [
            rung("zstd", 6, 4e-9, 5.0, 1.0),
            rung("zstd", 1, 2e-9, 4.0, 1.2),
            rung("lz4", 1, 1e-9, 3.0, 1.5),
        ],
        thresholds=[0.3, 0.7],
    )


def _request(request_id, tenant="t", size=2048, arrival=0.0):
    stamp = b"gateway payload %d " % request_id
    payload = stamp * (size // len(stamp) + 1)
    return ServingRequest(
        request_id=request_id,
        tenant=tenant,
        payload=payload[:size],
        arrival=arrival,
    )


def _always_fail_injector():
    return FaultInjector(
        FaultPlan("always", (FaultSpec("codec", "fail", 1.0),)), seed=1
    )


class TestDataPath:
    def test_admit_serve_roundtrip_accounting(self):
        gateway = CompressionGateway(_ladder(), capacity=16)
        for i in range(4):
            assert gateway.submit(_request(i)).admitted
        served = gateway.serve_batch(0.0, 10)
        assert len(served) == 4
        stats = gateway.stats
        assert stats.submitted == stats.admitted == stats.served == 4
        assert stats.shed == stats.expired == stats.raw_fallbacks == 0
        for item in served:
            assert item.rung_index == 0  # pressure 4/16 under 0.3
            assert not item.raw_fallback
            assert 0 < item.bytes_out < item.request.size
            assert item.service_seconds > 0
        assert stats.bytes_out == sum(s.bytes_out for s in served)
        assert stats.bytes_in_served == 4 * 2048

    def test_serve_respects_max_count(self):
        gateway = CompressionGateway(_ladder(), capacity=16)
        for i in range(6):
            gateway.submit(_request(i))
        assert len(gateway.serve_batch(0.0, 2)) == 2
        assert gateway.queue.depth() == 4

    def test_service_scale_multiplies_modeled_time(self):
        plain = CompressionGateway(_ladder(), capacity=16)
        scaled = CompressionGateway(_ladder(), capacity=16, service_scale=100.0)
        plain.submit(_request(0))
        scaled.submit(_request(0))
        base = plain.serve_batch(0.0, 1)[0]
        slow = scaled.serve_batch(0.0, 1)[0]
        assert slow.bytes_out == base.bytes_out  # output is never scaled
        # the fixed per-request overhead is not subject to host contention
        overhead = plain.overhead_seconds
        assert slow.service_seconds - overhead == pytest.approx(
            (base.service_seconds - overhead) * 100.0
        )

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CompressionGateway(_ladder(), capacity=0)
        with pytest.raises(ValueError):
            CompressionGateway(_ladder(), service_scale=0.0)


class TestDegradation:
    def test_pressure_selects_deeper_rungs(self):
        gateway = CompressionGateway(_ladder(), capacity=10)
        for i in range(8):
            gateway.submit(_request(i))
        # pressure at first dequeue is 0.8: past both thresholds
        served = gateway.serve_batch(0.0, 8)
        assert served[0].rung_index == 2
        assert served[0].rung_label == "lz4-1"
        # the queue drains as the batch forms, so the tail degrades less
        assert served[-1].rung_index == 0
        assert gateway.stats.degraded == sum(1 for s in served if s.degraded)
        assert gateway.stats.first_degraded_at is not None

    def test_degradation_disabled_pins_rung0(self):
        gateway = CompressionGateway(
            _ladder(), capacity=10, degradation_enabled=False
        )
        for i in range(8):
            gateway.submit(_request(i))
        served = gateway.serve_batch(0.0, 8)
        assert all(s.rung_index == 0 for s in served)
        assert gateway.stats.degraded == 0

    def test_shed_when_lane_full(self):
        gateway = CompressionGateway(_ladder(), capacity=2)
        clock = gateway.clock
        assert gateway.submit(_request(0)).admitted
        assert gateway.submit(_request(1)).admitted
        clock.advance(1.5)
        verdict = gateway.submit(_request(2))
        assert verdict.decision == "shed"
        assert gateway.stats.shed == 1
        assert gateway.stats.first_shed_at == pytest.approx(1.5)


class TestFaultsAndBreakers:
    def test_codec_failure_falls_back_to_raw(self):
        injector = _always_fail_injector()
        clock = SimClock()
        gateway = CompressionGateway(
            _ladder(),
            capacity=16,
            clock=clock,
            codec_factory=lambda name: FaultyCodec(
                get_codec(name), injector, clock=clock
            ),
        )
        gateway.submit(_request(0))
        served = gateway.serve_batch(0.0, 1)[0]
        assert served.raw_fallback
        assert served.bytes_out == served.request.size  # raw passthrough
        expected = (
            served.request.size / RAW_COPY_BANDWIDTH
            + gateway.overhead_seconds
        )
        assert served.service_seconds == pytest.approx(expected)
        assert gateway.stats.raw_fallbacks == 1
        assert gateway.stats.served == 1

    def test_breaker_opens_after_repeated_failures(self):
        injector = _always_fail_injector()
        clock = SimClock()
        gateway = CompressionGateway(
            _ladder(),
            capacity=64,
            clock=clock,
            codec_factory=lambda name: FaultyCodec(
                get_codec(name), injector, clock=clock
            ),
            breaker_failure_threshold=3,
            breaker_cooldown_seconds=10.0,
        )
        for i in range(6):
            gateway.submit(_request(i))
            gateway.serve_batch(clock.now(), 1)
        assert not gateway.breaker("zstd").allow()
        # every request was still served -- raw, never dropped
        assert gateway.stats.served == 6
        assert gateway.stats.raw_fallbacks == 6

    def test_healthy_codec_keeps_breaker_closed(self):
        gateway = CompressionGateway(_ladder(), capacity=16)
        for i in range(5):
            gateway.submit(_request(i))
        gateway.serve_batch(0.0, 5)
        assert gateway.breaker("zstd").allow()
        assert gateway.stats.raw_fallbacks == 0


class TestTelemetry:
    def test_disabled_obs_records_nothing(self):
        obs.reset()
        obs.disable()
        gateway = CompressionGateway(_ladder(), capacity=16)
        gateway.submit(_request(0))
        gateway.serve_batch(0.0, 1)
        assert len(obs.get_registry()) == 0

    def test_enabled_obs_records_verdicts_and_service(self):
        obs.reset()
        obs.enable()
        try:
            gateway = CompressionGateway(_ladder(), capacity=10)
            for i in range(8):
                gateway.submit(_request(i, tenant="tenant-a"))
            gateway.serve_batch(0.0, 8)
            registry = obs.get_registry()
            requests = registry.counter(SERVING_REQUESTS)
            assert (
                requests.value(tenant="tenant-a", verdict="admit") == 8
            )
            degraded = registry.counter(SERVING_DEGRADED)
            assert degraded.total() == gateway.stats.degraded > 0
        finally:
            obs.disable()
            obs.reset()
