"""Seeded fuzz: random graphs x boundary payloads must round-trip exactly.

Like the codec fuzz suites, the corpus walks ``REPRO_FUZZ_SEED`` (CI sets
it from the date; locally it defaults to a fixed value). Every assertion
message carries the seed so a red run replays with::

    REPRO_FUZZ_SEED=<seed> pytest tests/graphs/test_graph_fuzz.py

Graphs are sampled from the same grammar the search mutates, so the fuzz
covers shapes training could actually emit — not just the trained trio.
"""

import os
import random

import pytest

from repro.graphs.codec import GraphCompressor
from repro.graphs.model import MAX_DEPTH, validate_spec

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20230913"))

_LEAVES = [
    {"kind": "leaf", "codec": "zstd", "level": 1},
    {"kind": "leaf", "codec": "zlib", "level": 6},
    {"kind": "leaf", "codec": "lz4", "level": 1},
    {"kind": "store"},
]

_SIZES = [0, 1, 7, 63, 64, 65, 1023, 4096]
_STYLES = ["random", "records", "zeros", "floats"]


def _payload(rng: random.Random, size: int, style: str) -> bytes:
    if style == "random":
        return bytes(rng.getrandbits(8) for _ in range(size))
    if style == "zeros":
        return b"\x00" * size
    if style == "floats":
        import struct

        vals = [rng.random() * 100 for _ in range((size // 8) + 1)]
        return struct.pack(f"<{len(vals)}d", *vals)[:size]
    row = b"id=%d|country=US|score=0.5|\n"
    out = b""
    i = 0
    while len(out) < size:
        out += row % i
        i += 1
    return out[:size]


def _random_spec(rng: random.Random, depth: int = 0) -> dict:
    if depth >= MAX_DEPTH - 1 or rng.random() < 0.35:
        return dict(rng.choice(_LEAVES))
    kind = rng.choice(
        ["transpose", "delta", "zigzag", "varint", "tokenize", "floatsplit",
         "headsplit", "slice"]
    )
    if kind == "transpose":
        return {
            "kind": kind,
            "width": rng.choice([2, 4, 8, 16, 32]),
            "child": _random_spec(rng, depth + 1),
        }
    if kind in ("delta", "zigzag", "varint"):
        return {
            "kind": kind,
            "width": rng.choice([1, 2, 4, 8]),
            "child": _random_spec(rng, depth + 1),
        }
    if kind == "tokenize":
        lanes = rng.randint(1, 4)
        node = {
            "kind": kind,
            "delim": rng.choice([0, 10, 44, 124]),
            "lanes": lanes,
            "children": [_random_spec(rng, depth + 1) for _ in range(1 + lanes)],
        }
        if rng.random() < 0.5:
            node["reset"] = rng.choice([10, 0])
        return node
    if kind == "floatsplit":
        width = rng.choice([2, 4, 8])
        return {
            "kind": kind,
            "width": width,
            "hi": rng.randint(1, width - 1),
            "children": [_random_spec(rng, depth + 1) for _ in range(2)],
        }
    if kind == "headsplit":
        return {
            "kind": kind,
            "marker": rng.choice([0, 10, 124]),
            "children": [_random_spec(rng, depth + 1) for _ in range(2)],
        }
    sections = rng.randint(1, 3)
    return {
        "kind": "slice",
        "sizes": [rng.choice([0, 1, 16, 67, 4096]) for _ in range(sections)],
        "children": [_random_spec(rng, depth + 1) for _ in range(sections + 1)],
    }


@pytest.mark.parametrize("round_index", range(12))
def test_random_graphs_roundtrip(round_index):
    rng = random.Random(f"{FUZZ_SEED}:{round_index}")
    spec = _random_spec(rng)
    try:
        validate_spec(spec)
    except Exception:  # graph grew past the node cap — resample shallower
        spec = dict(rng.choice(_LEAVES))
    codec = GraphCompressor(f"fuzz{round_index}", spec)
    for size in _SIZES:
        style = rng.choice(_STYLES)
        data = _payload(rng, size, style)
        blob = codec.compress(data, 1).data
        back = codec.decompress(blob).data
        assert back == data, (
            f"round-trip mismatch: REPRO_FUZZ_SEED={FUZZ_SEED} "
            f"round={round_index} size={size} style={style} spec={spec}"
        )


@pytest.mark.parametrize("round_index", range(4))
def test_random_graphs_are_deterministic(round_index):
    rng = random.Random(f"{FUZZ_SEED}:det:{round_index}")
    spec = _random_spec(rng)
    try:
        validate_spec(spec)
    except Exception:
        spec = dict(rng.choice(_LEAVES))
    data = _payload(rng, 2048, "records")
    codec = GraphCompressor(f"det{round_index}", spec)
    first = codec.compress(data, 1).data
    second = GraphCompressor(f"det{round_index}", spec).compress(data, 1).data
    assert first == second, (
        f"nondeterministic compress: REPRO_FUZZ_SEED={FUZZ_SEED} "
        f"round={round_index} spec={spec}"
    )


@pytest.mark.parametrize("round_index", range(6))
def test_bitflipped_streams_never_escape(round_index):
    """Corrupting a fuzzed stream raises CorruptDataError or decodes exactly."""
    from repro.codecs.base import CorruptDataError

    rng = random.Random(f"{FUZZ_SEED}:flip:{round_index}")
    spec = _random_spec(rng)
    try:
        validate_spec(spec)
    except Exception:
        spec = dict(rng.choice(_LEAVES))
    data = _payload(rng, 1024, rng.choice(_STYLES))
    codec = GraphCompressor(f"flip{round_index}", spec)
    blob = bytearray(codec.compress(data, 1).data)
    for _ in range(40):
        pos = rng.randrange(len(blob))
        old = blob[pos]
        blob[pos] ^= 1 << rng.randrange(8)
        try:
            codec.decompress(bytes(blob))
        except CorruptDataError:
            pass  # the contract: corruption is *reported*, typed
        # a flip may land in dead space (e.g. high uvarint padding) and
        # still decode -- acceptable as long as no raw exception escaped
        blob[pos] = old
