"""Cache server/client tests: item compression, dictionaries, CPU placement."""

import pytest

from repro.corpus import CACHE1_TYPES, generate_cache_items
from repro.services import CacheClient, CacheServer


@pytest.fixture()
def items():
    return generate_cache_items(CACHE1_TYPES, 150, seed=10)


def _fill(server, items):
    for index, (type_name, payload) in enumerate(items):
        server.set(b"key:%d" % index, type_name, payload)


class TestCacheServer:
    def test_set_get_roundtrip(self, items):
        server = CacheServer()
        client = CacheClient(server)
        _fill(server, items)
        for index, (__, payload) in enumerate(items):
            assert client.get(b"key:%d" % index) == payload

    def test_miss_returns_none(self):
        server = CacheServer()
        client = CacheClient(server)
        assert client.get(b"missing") is None
        assert server.stats.misses == 1

    def test_memory_ratio_above_one(self, items):
        server = CacheServer(level=3)
        _fill(server, items)
        assert server.stats.memory_ratio > 1.0

    def test_tiny_items_stored_raw(self):
        server = CacheServer(min_compress_size=64)
        server.set(b"k", "session_state", b"tiny")
        assert server.stats.compress_counters.bytes_in == 0

    def test_incompressible_items_stored_raw(self):
        import random

        rng = random.Random(1)
        server = CacheServer()
        noise = bytes(rng.getrandbits(8) for _ in range(500))
        server.set(b"k", "session_state", noise)
        client = CacheClient(server)
        assert client.get(b"k") == noise
        # stored raw: stored bytes equals raw bytes
        assert server.stats.stored_bytes == len(noise)

    def test_hit_rate_accounting(self, items):
        server = CacheServer()
        client = CacheClient(server)
        _fill(server, items[:10])
        client.get(b"key:1")
        client.get(b"key:2")
        client.get(b"nope")
        assert server.stats.hits == 2 and server.stats.misses == 1
        assert server.stats.hit_rate == pytest.approx(2 / 3)


class TestDictionaries:
    def test_dictionaries_improve_memory_ratio(self, items):
        by_type = {}
        for type_name, payload in items:
            by_type.setdefault(type_name, []).append(payload)

        plain = CacheServer(level=3, use_dictionaries=False)
        dicted = CacheServer(level=3, use_dictionaries=True)
        for type_name, payloads in by_type.items():
            dicted.train_type_dictionary(type_name, payloads[: len(payloads) // 2])
        _fill(plain, items)
        _fill(dicted, items)
        assert dicted.stats.memory_ratio > plain.stats.memory_ratio

    def test_dictionary_roundtrip_via_client(self, items):
        server = CacheServer(level=3, use_dictionaries=True)
        by_type = {}
        for type_name, payload in items:
            by_type.setdefault(type_name, []).append(payload)
        for type_name, payloads in by_type.items():
            server.train_type_dictionary(type_name, payloads[:30])
        client = CacheClient(server)
        _fill(server, items)
        for index, (__, payload) in enumerate(items):
            assert client.get(b"key:%d" % index) == payload

    def test_untrained_type_falls_back_to_plain(self):
        server = CacheServer(use_dictionaries=True)
        server.set(b"k", "never_trained", b"some payload data here" * 10)
        client = CacheClient(server)
        assert client.get(b"k") == b"some payload data here" * 10


class TestCpuPlacement:
    """Section IV-C: the server never decompresses; clients do."""

    def test_server_spends_no_decompression(self, items):
        server = CacheServer(level=3)
        client = CacheClient(server)
        _fill(server, items)
        for index in range(len(items)):
            client.get(b"key:%d" % index)
        # all decompression cycles are on the client
        assert client.stats.decompress_counters.bytes_out > 0
        assert client.stats.decompress_seconds > 0
        assert server.stats.compress_seconds > 0

    def test_network_bytes_are_compressed_bytes(self, items):
        server = CacheServer(level=3)
        client = CacheClient(server)
        _fill(server, items)
        for index in range(len(items)):
            client.get(b"key:%d" % index)
        assert server.stats.network_bytes_served < server.stats.raw_bytes
        assert client.stats.bytes_received == server.stats.network_bytes_served
