"""Property tests: every transform round-trips on adversarial inputs.

Each transform kind must be *total* (accept any byte string, aligned or
not) and *invertible* (decode(encode(x)) == x exactly). The inputs here
are the regimes where structural transforms break: empty, single byte,
lengths that do not divide the element width, all-equal runs, inputs with
no delimiter at all, and inputs that are nothing but delimiters.
"""

import random

import pytest

from repro.graphs.nodes import decode_transform, encode_transform, transform_for

_LEAF = {"kind": "leaf", "codec": "zstd", "level": 1}


def _random_bytes(size: int, seed: int) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.getrandbits(8) for _ in range(size))


def _adversarial_payloads():
    """Payloads chosen to straddle alignment and degenerate-content edges."""
    return [
        b"",
        b"\x00",
        b"|",
        b"x" * 1,
        b"\x7c" * 64,  # all delimiter bytes
        b"A" * 257,  # all-equal, non-aligned for widths 2/4/8
        bytes(range(256)),
        _random_bytes(33, 1),  # 33 = 8*4 + 1: unaligned tail for every width
        _random_bytes(1023, 2),
        b"id=1|country=US|\nid=2|country=BR|\n" * 8,
    ]


def _roundtrip(node, data):
    streams = encode_transform(node, data)
    assert len(streams) == transform_for(node["kind"]).fanout(node), (
        f"{node['kind']} produced {len(streams)} streams for "
        f"fanout {transform_for(node['kind']).fanout(node)}"
    )
    decoded = decode_transform(node, streams)
    assert decoded == data, (
        f"{node} failed to round-trip {len(data)} bytes "
        f"(got {len(decoded)} back)"
    )


@pytest.mark.parametrize("width", [2, 3, 4, 8, 16, 32])
@pytest.mark.parametrize("data", _adversarial_payloads())
def test_transpose_roundtrip(width, data):
    _roundtrip({"kind": "transpose", "width": width, "child": _LEAF}, data)


@pytest.mark.parametrize("kind", ["delta", "zigzag", "varint"])
@pytest.mark.parametrize("width", [1, 2, 4, 8])
@pytest.mark.parametrize("data", _adversarial_payloads())
def test_value_transform_roundtrip(kind, width, data):
    _roundtrip({"kind": kind, "width": width, "child": _LEAF}, data)


@pytest.mark.parametrize("delim", [0, 10, 124])
@pytest.mark.parametrize("lanes", [1, 3, 8])
@pytest.mark.parametrize("data", _adversarial_payloads())
def test_tokenize_roundtrip(delim, lanes, data):
    node = {
        "kind": "tokenize",
        "delim": delim,
        "lanes": lanes,
        "children": [_LEAF] * (1 + lanes),
    }
    _roundtrip(node, data)


@pytest.mark.parametrize("reset", [10, 124])
@pytest.mark.parametrize("data", _adversarial_payloads())
def test_tokenize_reset_roundtrip(reset, data):
    node = {
        "kind": "tokenize",
        "delim": 124,
        "lanes": 6,
        "reset": reset,
        "children": [_LEAF] * 7,
    }
    _roundtrip(node, data)


@pytest.mark.parametrize("width,hi", [(2, 1), (4, 1), (4, 2), (8, 2), (8, 7)])
@pytest.mark.parametrize("data", _adversarial_payloads())
def test_floatsplit_roundtrip(width, hi, data):
    node = {
        "kind": "floatsplit",
        "width": width,
        "hi": hi,
        "children": [_LEAF, _LEAF],
    }
    _roundtrip(node, data)


@pytest.mark.parametrize("marker", [0, 124, 255])
@pytest.mark.parametrize("data", _adversarial_payloads())
def test_headsplit_roundtrip(marker, data):
    node = {"kind": "headsplit", "marker": marker, "children": [_LEAF, _LEAF]}
    _roundtrip(node, data)


@pytest.mark.parametrize(
    "sizes",
    [[1], [64], [100000], [16, 16], [67, 9828, 4], [0, 5]],
)
@pytest.mark.parametrize("data", _adversarial_payloads())
def test_slice_roundtrip(sizes, data):
    node = {
        "kind": "slice",
        "sizes": sizes,
        "children": [_LEAF] * (len(sizes) + 1),
    }
    _roundtrip(node, data)


def test_delta_then_decode_is_exact_on_wraparound():
    """Modular delta must survive values that wrap the width."""
    data = bytes([255, 0, 1, 254, 2]) * 7  # deltas wrap mod 256
    _roundtrip({"kind": "delta", "width": 1, "child": _LEAF}, data)


def test_tokenize_counter_realignment():
    """The reset byte re-anchors field k -> lane k at each row boundary.

    Rows with a *different* number of fields would otherwise rotate the
    round-robin assignment; with reset, alignment self-heals per row.
    """
    rows = b"a|bb|ccc\n" + b"x|y\n" + b"1|22|333\n"
    node = {
        "kind": "tokenize",
        "delim": 124,
        "lanes": 3,
        "reset": 10,
        "children": [_LEAF] * 4,
    }
    _roundtrip(node, rows)
