"""Extension: compression as effective cache capacity (paper §I motivation).

The paper motivates compression partly through memory TCO: "reduce ... the
memory total cost of ownership". At a fixed resident-byte budget, a
compressing cache holds more items, so its hit rate rises. This bench
quantifies that with the cache substrate's LRU eviction.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.corpus import CACHE1_TYPES, generate_cache_items
from repro.services import CacheClient, CacheServer


@pytest.fixture(scope="module")
def comparison():
    items = generate_cache_items(CACHE1_TYPES, 400, seed=220)
    out = {}
    for label, compressing, dictionaries in (
        ("raw", False, False),
        ("compressed", True, False),
        ("compressed+dict", True, True),
    ):
        server = CacheServer(
            level=3,
            capacity_bytes=50_000,
            min_compress_size=64 if compressing else 10**9,
            use_dictionaries=dictionaries,
        )
        if dictionaries:
            by_type = {}
            for type_name, payload in items:
                by_type.setdefault(type_name, []).append(payload)
            for type_name, payloads in by_type.items():
                server.train_type_dictionary(type_name, payloads[:40])
        client = CacheClient(server)
        for index, (type_name, payload) in enumerate(items):
            server.set(b"k%d" % index, type_name, payload)
        hits = sum(
            1 for index in range(len(items)) if client.get(b"k%d" % index) is not None
        )
        out[label] = (len(server), hits / len(items), server.stats.evictions)
    return out


def test_ext_effective_capacity(benchmark, comparison, figure_output):
    rows = [
        [label, resident, f"{hit_rate * 100:.1f}%", evictions]
        for label, (resident, hit_rate, evictions) in comparison.items()
    ]
    figure_output(
        "ext_effective_capacity",
        format_table(
            ["mode", "resident items", "hit rate", "evictions"],
            rows,
            title="Extension: fixed 50KB cache budget, item compression on/off",
        ),
    )
    assert comparison["compressed"][1] > 1.2 * comparison["raw"][1]
    assert comparison["compressed+dict"][1] >= comparison["compressed"][1]

    items = generate_cache_items(CACHE1_TYPES, 50, seed=221)
    server = CacheServer(level=3, capacity_bytes=20_000)

    def fill():
        for index, (type_name, payload) in enumerate(items):
            server.set(b"b%d" % index, type_name, payload)

    benchmark(fill)
