"""A minimal RPC channel with optional payload compression.

Datacenter services "follow an RPC-based approach to interact with each
other" (Section II-A); compressing RPC payloads trades compute (and latency)
for network bytes. The channel models a link with fixed bandwidth and
propagation delay and accounts both sides' compression work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.codecs import Compressor, get_codec
from repro.codecs.base import StageCounters
from repro.obs.instrument import record_rpc_message
from repro.obs.spans import span
from repro.obs.state import OBS_STATE
from repro.perfmodel import DEFAULT_MACHINE, MachineModel


@dataclass
class RpcStats:
    """Per-channel accounting."""

    messages: int = 0
    raw_bytes: int = 0
    wire_bytes: int = 0
    compress_seconds: float = 0.0
    decompress_seconds: float = 0.0
    transfer_seconds: float = 0.0
    compress_counters: StageCounters = field(default_factory=StageCounters)
    decompress_counters: StageCounters = field(default_factory=StageCounters)

    @property
    def wire_ratio(self) -> float:
        """Raw bytes per wire byte (higher = more effective compression).

        With no traffic at all the ratio is the neutral 1.0; if raw bytes
        were sent but zero bytes hit the wire (degenerate empty-payload
        compression) the ratio is unbounded, reported as ``inf`` rather
        than a misleading 1.0.
        """
        if self.wire_bytes:
            return self.raw_bytes / self.wire_bytes
        return float("inf") if self.raw_bytes else 1.0

    @property
    def total_latency_seconds(self) -> float:
        return self.compress_seconds + self.transfer_seconds + self.decompress_seconds


class Channel:
    """A point-to-point link carrying optionally compressed messages."""

    def __init__(
        self,
        bandwidth_bytes_per_second: float = 1.25e9,  # 10 Gb/s
        propagation_seconds: float = 50e-6,
        codec: Optional[Compressor] = None,
        level: int = 1,
        compress: bool = True,
        machine: MachineModel = DEFAULT_MACHINE,
    ) -> None:
        self.bandwidth = bandwidth_bytes_per_second
        self.propagation_seconds = propagation_seconds
        self.codec = codec if codec is not None else get_codec("zstd")
        self.level = level
        self.compress = compress
        self.machine = machine
        self.stats = RpcStats()

    def send(self, payload: bytes) -> Tuple[bytes, float]:
        """Deliver ``payload``; returns (received_bytes, end_to_end_seconds).

        End-to-end time = sender compression + wire transfer + receiver
        decompression, the latency sum ADS1 must keep within its SLO.
        """
        if OBS_STATE.enabled:
            with span("rpc.send", codec=self.codec.name, level=self.level):
                return self._send(payload)
        return self._send(payload)

    def _send(self, payload: bytes) -> Tuple[bytes, float]:
        self.stats.messages += 1
        self.stats.raw_bytes += len(payload)
        elapsed = self.propagation_seconds
        compress_seconds = decompress_seconds = 0.0
        if self.compress:
            result = self.codec.compress(payload, self.level)
            self.stats.compress_counters.merge(result.counters)
            compress_seconds = self.machine.compress_seconds(
                self.codec.name, result.counters
            )
            self.stats.compress_seconds += compress_seconds
            elapsed += compress_seconds
            wire = result.data
        else:
            wire = payload
        self.stats.wire_bytes += len(wire)
        transfer = len(wire) / self.bandwidth
        self.stats.transfer_seconds += transfer
        elapsed += transfer
        if self.compress:
            restored = self.codec.decompress(wire)
            self.stats.decompress_counters.merge(restored.counters)
            decompress_seconds = self.machine.decompress_seconds(
                self.codec.name, restored.counters
            )
            self.stats.decompress_seconds += decompress_seconds
            elapsed += decompress_seconds
            received = restored.data
        else:
            received = wire
        if OBS_STATE.enabled:
            record_rpc_message(
                self.codec.name if self.compress else "none",
                raw_bytes=len(payload),
                wire_bytes=len(wire),
                compress_seconds=compress_seconds,
                transfer_seconds=transfer,
                decompress_seconds=decompress_seconds,
            )
        return received, elapsed
