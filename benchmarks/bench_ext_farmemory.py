"""Extension: far-memory cold-page compression (paper §I motivation).

"reduce ... the memory total cost of ownership (TCO) by proactively
compressing cold memory pages". Measures memory saving and fault cost for a
skewed page-access pattern.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import format_table
from repro.corpus import generate_records
from repro.services import FarMemoryPool
from repro.services.farmemory import PAGE_SIZE


def _run(level: int, rounds: int = 15) -> FarMemoryPool:
    pool = FarMemoryPool(level=level, cold_age_ticks=3)
    for page_number in range(48):
        pool.write(page_number, generate_records(PAGE_SIZE, seed=page_number))
    rng = random.Random(240)
    hot = list(range(6))
    for __ in range(rounds):
        pool.tick()
        for __ in range(20):
            page = rng.choice(hot) if rng.random() < 0.9 else rng.randrange(48)
            pool.read(page)
    return pool


@pytest.fixture(scope="module")
def pools():
    return {level: _run(level) for level in (1, 3, 9)}


def test_ext_farmemory(benchmark, pools, figure_output):
    rows = []
    for level, pool in pools.items():
        rows.append(
            [
                f"zstd-{level}",
                f"{pool.memory_saving * 100:.1f}%",
                pool.stats.pages_faulted,
                f"{pool.stats.mean_fault_seconds * 1e6:.1f}",
            ]
        )
    figure_output(
        "ext_farmemory",
        format_table(
            ["codec", "memory saving", "faults", "mean fault us"],
            rows,
            title="Extension: cold-page compression, skewed access pattern",
        ),
    )
    # Cold-page compression recovers a large share of the pool's DRAM.
    assert pools[1].memory_saving > 0.4
    # Higher levels squeeze more out of the cold pool.
    assert pools[9].memory_saving >= pools[1].memory_saving

    benchmark(lambda: _run(1, rounds=3))
