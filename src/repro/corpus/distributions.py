"""Seeded samplers for the size/frequency distributions the paper reports."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class SeededSampler:
    """Thin deterministic wrapper over numpy's Generator.

    All corpus generators draw through one of these so that every experiment
    in the repository is reproducible from its seed.
    """

    def __init__(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def zipf_indices(self, count: int, vocabulary: int, exponent: float = 1.1) -> np.ndarray:
        """``count`` indices in ``[0, vocabulary)`` with Zipf-like skew."""
        weights = 1.0 / np.power(np.arange(1, vocabulary + 1), exponent)
        weights /= weights.sum()
        return self._rng.choice(vocabulary, size=count, p=weights)

    def lognormal_sizes(
        self,
        count: int,
        median: float,
        sigma: float = 1.0,
        minimum: int = 16,
        maximum: int = 1 << 20,
    ) -> List[int]:
        """Log-normal sizes: small-item mode with a long tail (Figs 8-9)."""
        raw = self._rng.lognormal(mean=np.log(median), sigma=sigma, size=count)
        return [int(min(max(v, minimum), maximum)) for v in raw]

    def bytes(self, count: int) -> bytes:
        return self._rng.integers(0, 256, size=count, dtype=np.uint8).tobytes()

    def integers(self, low: int, high: int, count: int) -> np.ndarray:
        return self._rng.integers(low, high, size=count)

    def choice(self, options: Sequence, count: int = 1) -> list:
        indices = self._rng.integers(0, len(options), size=count)
        return [options[i] for i in indices]

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def shuffled(self, items: Sequence) -> list:
        order = self._rng.permutation(len(items))
        return [items[i] for i in order]
