"""Distribution summaries used by the size-distribution figures (5, 8, 9)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q / 100 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] * (1 - fraction) + ordered[high] * fraction)


def size_bucket_label(low: int) -> str:
    """Human label for a power-of-two size bucket starting at ``low``."""
    if low >= 1 << 20:
        return f"{low >> 20}MB"
    if low >= 1 << 10:
        return f"{low >> 10}KB"
    return f"{low}B"


def log2_histogram(values: Sequence[int]) -> List[Tuple[str, float]]:
    """Histogram over power-of-two buckets: [(bucket label, fraction)].

    The item-size figures (8, 9) bucket this way to show the sub-1KB mode
    and the long tail on one axis.
    """
    if not values:
        return []
    counts: Dict[int, int] = {}
    for value in values:
        bucket = 1 << max(0, int(value).bit_length() - 1)
        counts[bucket] = counts.get(bucket, 0) + 1
    total = len(values)
    return [
        (size_bucket_label(bucket), counts[bucket] / total)
        for bucket in sorted(counts)
    ]


def summarize_sizes(values: Sequence[int]) -> Dict[str, float]:
    """p25/p50/p75/p99 + mean + share below 1KB, as the figures discuss."""
    if not values:
        raise ValueError("no sizes to summarize")
    below_1kb = sum(1 for v in values if v < 1024) / len(values)
    return {
        "p25": percentile(values, 25),
        "p50": percentile(values, 50),
        "p75": percentile(values, 75),
        "p99": percentile(values, 99),
        "mean": sum(values) / len(values),
        "below_1kb": below_1kb,
    }
