"""The process-global telemetry enable flag.

Instrumented hot paths (codec calls, block-cache probes, RPC sends) must
cost nothing when telemetry is off: they read ``OBS_STATE.enabled`` once
per call and branch around every other observability import and
allocation. The flag lives in its own tiny module so hot paths can import
it without pulling in the registry, exporters, or span machinery.
"""

from __future__ import annotations


class ObsState:
    """Mutable holder for the global on/off switch.

    A single-attribute object (rather than a bare module global) so hot
    modules can bind the *object* at import time and still see later
    ``enable()``/``disable()`` flips.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


#: the switch every instrumented call site checks
OBS_STATE = ObsState()


def enable() -> None:
    """Turn on fleet telemetry collection process-wide."""
    OBS_STATE.enabled = True


def disable() -> None:
    """Turn off telemetry; instrumented paths revert to a single branch."""
    OBS_STATE.enabled = False


def is_enabled() -> bool:
    return OBS_STATE.enabled
