"""Zstandard-style codec.

Implements the two-stage structure the paper describes for Zstd (Section
II-B): an LZ match-finding stage selected by the compression level, followed
by an entropy stage that Huffman-codes the literals and codes the sequences
(literal lengths, match lengths, offsets) with Finite State Entropy. Levels
span -5..22 like the real library: negative levels trade ratio for speed via
scan acceleration, high levels use dynamic-programming parsing.

The frame format is this project's own (not byte-compatible with RFC 8478),
but the sequence code tables follow the RFC's baselines/extra-bits exactly,
and dictionary compression (shared history trained from samples) is
supported the way Managed Compression uses it.
"""

from repro.codecs.zstd.codec import FrameInfo, ZstdCompressor, inspect_frame

__all__ = ["ZstdCompressor", "FrameInfo", "inspect_frame"]
