"""Hash-chain match finder with greedy, lazy, and two-step-lazy parsing."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.codecs.base import StageCounters
from repro.codecs.lz77 import Token, match_length
from repro.codecs.matchfinders.base import (
    MatchFinder,
    MatchFinderParams,
    hash_positions,
)


class HashChainMatchFinder(MatchFinder):
    """Chains every position per hash bucket; probes up to ``search_depth``.

    Lazy evaluation (``lazy_steps`` = 1 or 2) defers a found match to check
    whether starting one or two bytes later yields a longer one -- the
    mid-level strategies of zlib and Zstandard.
    """

    def parse(
        self,
        data: bytes,
        start: int,
        params: MatchFinderParams,
        counters: Optional[StageCounters] = None,
    ) -> List[Token]:
        counters = counters if counters is not None else StageCounters()
        n = len(data)
        min_match = params.min_match
        hash_bytes = min(4, min_match)
        hashes = hash_positions(data, params.hash_log, hash_bytes)
        head = [-1] * (1 << params.hash_log)
        prev = [-1] * n
        counters.setup_entries += len(head) + n
        max_offset = params.effective_max_offset()
        max_match = params.max_match
        target = params.target_length
        depth = params.search_depth
        last_hashable = len(hashes)

        # Positions [0, inserted) are indexed in the chains. History bytes
        # before `start` are indexed too so matches can reach a dictionary.
        inserted = 0

        def ensure_inserted(upto: int) -> None:
            nonlocal inserted
            stop = min(upto, last_hashable)
            while inserted < stop:
                h = hashes[inserted]
                prev[inserted] = head[h]
                head[h] = inserted
                inserted += 1

        def best_match(pos: int) -> Tuple[int, int]:
            """Return (length, offset) of the best chain match at ``pos``."""
            counters.positions_scanned += 1
            counters.hash_probes += 1
            limit = min(n - pos, max_match)
            if limit < min_match:
                return 0, 0
            best_len = min_match - 1
            best_off = 0
            candidate = head[hashes[pos]]
            probes = depth
            lowest = pos - max_offset
            while candidate >= 0 and candidate >= lowest and probes > 0:
                probes -= 1
                counters.match_candidates += 1
                # Quick rejection: check the byte just past the current best.
                if (
                    best_len < limit
                    and data[candidate + best_len] == data[pos + best_len]
                ):
                    length = match_length(data, candidate, pos, limit)
                    counters.match_bytes_compared += length + 1
                    if length > best_len:
                        best_len = length
                        best_off = pos - candidate
                        if length >= target or length >= limit:
                            break
                candidate = prev[candidate]
            if best_len < min_match:
                return 0, 0
            return best_len, best_off

        tokens: List[Token] = []
        anchor = start
        i = start
        while i + min_match <= n and i < last_hashable:
            ensure_inserted(i)
            length, offset = best_match(i)
            if not length:
                i += 1
                continue
            # Lazy evaluation: peek ahead up to lazy_steps positions.
            steps = 0
            while (
                steps < params.lazy_steps
                and i + 1 + min_match <= n
                and i + 1 < last_hashable
            ):
                ensure_inserted(i + 1)
                next_length, next_offset = best_match(i + 1)
                if next_length > length:
                    i += 1
                    length, offset = next_length, next_offset
                    steps += 1
                else:
                    break
            literal_run = i - anchor
            tokens.append(Token(literal_run, length, offset))
            counters.sequences_emitted += 1
            counters.literals_emitted += literal_run
            ensure_inserted(i + length)
            i += length
            anchor = i
        return self._finish(tokens, anchor, n)
