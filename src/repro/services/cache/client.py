"""Cache client: decompresses served items on the client side."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.codecs.base import StageCounters
from repro.obs.instrument import record_cache_request
from repro.obs.state import OBS_STATE
from repro.perfmodel import DEFAULT_MACHINE, MachineModel
from repro.services.cache.server import CacheServer


@dataclass
class ClientStats:
    """Client-side decompression work (decentralized, as the paper notes)."""

    gets: int = 0
    decompress_counters: StageCounters = field(default_factory=StageCounters)
    decompress_seconds: float = 0.0
    bytes_received: int = 0
    bytes_decoded: int = 0


class CacheClient:
    """Client that receives compressed items and decompresses locally.

    "The client has to decompress the data, but the load is less centralized
    as each cache machine serves hundreds to thousands of clients"
    (Section IV-C).
    """

    def __init__(
        self, server: CacheServer, machine: MachineModel = DEFAULT_MACHINE
    ) -> None:
        self.server = server
        self.machine = machine
        self.stats = ClientStats()

    def get(self, key: bytes) -> Optional[bytes]:
        """Fetch and (if needed) decompress one item."""
        self.stats.gets += 1
        entry = self.server.get_compressed(key)
        if entry is None:
            if OBS_STATE.enabled:
                record_cache_request("client_get", "miss")
            return None
        type_name, compressed, payload = entry
        self.stats.bytes_received += len(payload)
        if OBS_STATE.enabled:
            record_cache_request("client_get", "hit", len(payload))
        if not compressed:
            self.stats.bytes_decoded += len(payload)
            return payload
        dictionary = self.server.dictionary_for(type_name)
        result = self.server.codec.decompress(payload, dictionary=dictionary)
        self.stats.decompress_counters.merge(result.counters)
        self.stats.decompress_seconds += self.machine.decompress_seconds(
            self.server.codec.name, result.counters
        )
        self.stats.bytes_decoded += len(result.data)
        return result.data
