"""Zstd-style frame format and the public compressor class."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.codecs.base import (
    Compressor,
    CorruptDataError,
    StageCounters,
    register_codec,
)
from repro.codecs.checksum import xxh32
from repro.codecs.matchfinders import MatchFinderParams, finder_for_strategy
from repro.codecs.zstd import blocks as zblocks
from repro.codecs.zstd import params as zparams

_MAGIC = b"RZST"
_FLAG_CHECKSUM = 0x01
_FLAG_DICT_ID = 0x02

_BLOCK_RAW = 0
_BLOCK_RLE = 1
_BLOCK_COMPRESSED = 2

_BLOCK_TYPE_NAMES = {0: "raw", 1: "rle", 2: "compressed"}


@dataclass(frozen=True)
class FrameInfo:
    """Parsed frame metadata (no payload decoding)."""

    content_size: int
    window_log: int
    has_checksum: bool
    dict_id: Optional[int]
    block_count: int
    block_types: Tuple[str, ...]
    compressed_size: int


def inspect_frame(payload: bytes) -> FrameInfo:
    """Parse a frame's headers without decompressing any block.

    The streaming-inspection entry point every production frame format
    offers (``zstd --list``): callers can budget memory (content size,
    window) and route by dictionary id before paying for decoding.
    """
    if payload[:4] != _MAGIC:
        raise CorruptDataError("bad zstd frame magic")
    if len(payload) < 14:
        raise CorruptDataError("truncated zstd frame header")
    flags = payload[4]
    window_log = payload[5]
    content_size = int.from_bytes(payload[6:14], "little")
    pos = 14
    dict_id: Optional[int] = None
    if flags & _FLAG_DICT_ID:
        if pos + 4 > len(payload):
            raise CorruptDataError("truncated dictionary id")
        dict_id = int.from_bytes(payload[pos : pos + 4], "little")
        pos += 4
    block_types = []
    while True:
        if pos + 4 > len(payload):
            raise CorruptDataError("truncated block header")
        header = int.from_bytes(payload[pos : pos + 4], "little")
        pos += 4
        block_type = header & 0x03
        if block_type not in _BLOCK_TYPE_NAMES:
            raise CorruptDataError(f"unknown block type {block_type}")
        block_types.append(_BLOCK_TYPE_NAMES[block_type])
        size = header >> 3
        if block_type == _BLOCK_RLE:
            pos += 1
        else:
            pos += size
        if header & 0x04:
            break
    if flags & _FLAG_CHECKSUM:
        pos += 4
    if pos > len(payload):
        raise CorruptDataError("frame shorter than headers claim")
    return FrameInfo(
        content_size=content_size,
        window_log=window_log,
        has_checksum=bool(flags & _FLAG_CHECKSUM),
        dict_id=dict_id,
        block_count=len(block_types),
        block_types=tuple(block_types),
        compressed_size=pos,
    )


class ZstdCompressor(Compressor):
    """Zstandard-style codec, levels -5..22, with dictionary support."""

    name = "zstd"
    min_level = zparams.MIN_LEVEL
    max_level = zparams.MAX_LEVEL
    default_level = 3

    def supports_dictionaries(self) -> bool:
        return True

    def params_for_level(
        self, level: int, input_size: int = 0
    ) -> MatchFinderParams:
        """Resolved match-finder parameters (after small-input shrinking)."""
        params = zparams.LEVEL_PARAMS[level]
        if input_size:
            params = zparams.shrink_for_input(params, input_size)
        return params

    def _compress(
        self,
        data: bytes,
        level: int,
        dictionary: Optional[bytes],
        counters: StageCounters,
    ) -> bytes:
        dict_bytes = dictionary or b""
        # Table shrinking keys off the whole match window: input plus any
        # dictionary history (otherwise a small item's window could not
        # reach back into its dictionary at all).
        params = self.params_for_level(level, len(data) + len(dict_bytes))
        finder = finder_for_strategy(params.strategy)

        out = bytearray(_MAGIC)
        flags = _FLAG_CHECKSUM | (_FLAG_DICT_ID if dictionary is not None else 0)
        out.append(flags)
        out.append(params.window_log)
        out.extend(len(data).to_bytes(8, "little"))
        if dictionary is not None:
            out.extend(xxh32(dict_bytes).to_bytes(4, "little"))

        block_size = zparams.MAX_BLOCK_SIZE
        offsets = range(0, len(data), block_size) if data else []
        starts = list(offsets)
        for index, block_start in enumerate(starts):
            chunk = data[block_start : block_start + block_size]
            is_last = index == len(starts) - 1
            if chunk and chunk.count(chunk[0]) == len(chunk):
                # Constant block: emit an RLE block without parsing.
                out.extend(self._block_header(_BLOCK_RLE, len(chunk), is_last))
                out.append(chunk[0])
                continue
            # The dictionary seeds the match window of the first block only
            # (blocks are otherwise independent; see DESIGN.md section 3).
            history = dict_bytes if index == 0 else b""
            body = self._compress_block(chunk, history, finder, params, counters)
            self._append_block(out, body, chunk, is_last, counters)
        if not starts:
            out.extend(self._block_header(_BLOCK_RAW, 0, True))
        out.extend(xxh32(data).to_bytes(4, "little"))
        return bytes(out)

    def _compress_block(
        self,
        chunk: bytes,
        history: bytes,
        finder,
        params: MatchFinderParams,
        counters: StageCounters,
    ) -> bytes:
        buffer = history + chunk
        tokens = finder.parse(buffer, len(history), params, counters)
        return zblocks.encode_block(buffer, len(history), tokens, counters)

    @staticmethod
    def _block_header(block_type: int, size: int, is_last: bool) -> bytes:
        value = block_type | (0x04 if is_last else 0) | (size << 3)
        return value.to_bytes(4, "little")

    def _append_block(
        self,
        out: bytearray,
        body: bytes,
        chunk: bytes,
        is_last: bool,
        counters: StageCounters,
    ) -> None:
        if len(body) + 4 >= len(chunk):
            out.extend(self._block_header(_BLOCK_RAW, len(chunk), is_last))
            out.extend(chunk)
        else:
            out.extend(self._block_header(_BLOCK_COMPRESSED, len(body), is_last))
            out.extend(body)

    def _decompress(
        self,
        payload: bytes,
        dictionary: Optional[bytes],
        counters: StageCounters,
    ) -> bytes:
        if not payload:
            raise CorruptDataError("bad zstd frame magic")
        out = bytearray()
        pos = 0
        # A stream is one or more concatenated frames; their contents
        # concatenate (the real zstd frame contract, and what the parallel
        # chunked engine emits -- one independent frame per chunk).
        while pos < len(payload):
            pos = self._decode_frame(payload, pos, dictionary, counters, out)
        return bytes(out)

    def _decode_frame(
        self,
        payload: bytes,
        pos: int,
        dictionary: Optional[bytes],
        counters: StageCounters,
        out: bytearray,
    ) -> int:
        """Decode one frame at ``pos`` into ``out``; returns the end offset."""
        if payload[pos : pos + 4] != _MAGIC:
            raise CorruptDataError("bad zstd frame magic")
        if len(payload) - pos < 14:
            raise CorruptDataError("truncated zstd frame header")
        flags = payload[pos + 4]
        content_size = int.from_bytes(payload[pos + 6 : pos + 14], "little")
        pos += 14
        dict_bytes = b""
        if flags & _FLAG_DICT_ID:
            if dictionary is None:
                raise CorruptDataError("frame requires a dictionary")
            stored_id = int.from_bytes(payload[pos : pos + 4], "little")
            if stored_id != xxh32(dictionary):
                raise CorruptDataError("dictionary mismatch")
            dict_bytes = dictionary
            pos += 4

        frame_start = len(out)
        self._check_output_budget(frame_start + content_size)
        first = True
        while True:
            self._check_output_budget(len(out))
            if pos + 4 > len(payload):
                raise CorruptDataError("truncated block header")
            header = int.from_bytes(payload[pos : pos + 4], "little")
            pos += 4
            block_type = header & 0x03
            is_last = bool(header & 0x04)
            size = header >> 3
            if block_type == _BLOCK_RAW:
                if pos + size > len(payload):
                    raise CorruptDataError("truncated raw block")
                self._check_output_budget(len(out) + size)
                out.extend(payload[pos : pos + size])
                counters.literal_bytes_copied += size
                pos += size
            elif block_type == _BLOCK_RLE:
                if pos >= len(payload):
                    raise CorruptDataError("truncated RLE block")
                # budget check BEFORE the run is materialized: a corrupt
                # size field must not allocate half a gigabyte first
                self._check_output_budget(len(out) + size)
                out.extend(bytes([payload[pos]]) * size)
                counters.match_bytes_copied += size
                pos += 1
            elif block_type == _BLOCK_COMPRESSED:
                if pos + size > len(payload):
                    raise CorruptDataError("truncated compressed block")
                history = dict_bytes if first else b""
                out.extend(
                    zblocks.decode_block(payload[pos : pos + size], counters, history)
                )
                pos += size
            else:
                raise CorruptDataError(f"unknown block type {block_type}")
            first = False
            if is_last:
                break
        if flags & _FLAG_CHECKSUM:
            if pos + 4 > len(payload):
                raise CorruptDataError("missing content checksum")
            stored = int.from_bytes(payload[pos : pos + 4], "little")
            if stored != xxh32(bytes(out[frame_start:])):
                raise CorruptDataError("zstd content checksum mismatch")
            pos += 4
        if len(out) - frame_start != content_size:
            raise CorruptDataError("zstd content size mismatch")
        return pos


register_codec("zstd", ZstdCompressor)
