"""Typed small cache items with skewed size distributions (Figs 8-11).

Items are strongly skewed toward sub-1KB sizes with a long tail, and items
of the same type share structure (field names, enum values) so that per-type
dictionaries capture substantial inter-message redundancy -- the property
dictionary compression exploits in CACHE1/CACHE2 (Section IV-C).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.corpus.distributions import SeededSampler


@dataclass(frozen=True)
class ItemTypeSpec:
    """One cache item type: a template plus its size distribution."""

    name: str
    median_size: int
    sigma: float
    weight: float  # share of traffic


#: CACHE1: distributed memory object cache (memcached-like) item types.
CACHE1_TYPES = [
    ItemTypeSpec("user_profile", median_size=420, sigma=0.8, weight=0.35),
    ItemTypeSpec("post_meta", median_size=250, sigma=0.9, weight=0.30),
    ItemTypeSpec("session_state", median_size=180, sigma=0.6, weight=0.20),
    ItemTypeSpec("media_manifest", median_size=1800, sigma=1.2, weight=0.15),
]

#: CACHE2: social-graph store item types (smaller, edge-heavy).
CACHE2_TYPES = [
    ItemTypeSpec("edge_list", median_size=140, sigma=0.9, weight=0.45),
    ItemTypeSpec("node_attrs", median_size=260, sigma=0.7, weight=0.30),
    ItemTypeSpec("assoc_count", median_size=64, sigma=0.4, weight=0.15),
    ItemTypeSpec("range_index", median_size=900, sigma=1.1, weight=0.10),
]

_ENUMS = {
    "visibility": ["public", "friends", "private"],
    "state": ["created", "updated", "archived"],
    "surface": ["feed", "profile", "search", "groups"],
}


def _item_payload(spec: ItemTypeSpec, sampler: SeededSampler, size: int) -> bytes:
    body: Dict[str, object] = {
        "type": spec.name,
        "schema_version": 12,
        "visibility": sampler.choice(_ENUMS["visibility"])[0],
        "state": sampler.choice(_ENUMS["state"])[0],
        "surface": sampler.choice(_ENUMS["surface"])[0],
        "owner_id": int(sampler.uniform(1e8, 9e8)),
        "updated_at": 1680000000 + int(sampler.uniform(0, 2_000_000)),
    }
    if spec.name in ("edge_list", "range_index"):
        count = max(1, (size - 160) // 12)
        base = int(sampler.uniform(1e8, 9e8))
        body["edges"] = [base + int(sampler.uniform(0, 5000)) for _ in range(count)]
    else:
        filler_len = max(0, size - 220)
        words = ["lorem", "ipsum", "dolor", "sit", "amet", "consectetur"]
        body["blob"] = " ".join(sampler.choice(words, count=max(1, filler_len // 6)))
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def generate_cache_items(
    type_specs: List[ItemTypeSpec], count: int, seed: int = 0
) -> List[Tuple[str, bytes]]:
    """``count`` items as ``(type_name, payload)`` pairs, traffic-weighted."""
    sampler = SeededSampler(seed)
    weights = [spec.weight for spec in type_specs]
    total_weight = sum(weights)
    items: List[Tuple[str, bytes]] = []
    for spec in type_specs:
        type_count = max(1, int(round(count * spec.weight / total_weight)))
        sizes = sampler.lognormal_sizes(
            type_count, median=spec.median_size, sigma=spec.sigma, maximum=1 << 17
        )
        for size in sizes:
            items.append((spec.name, _item_payload(spec, sampler, size)))
    return sampler.shuffled(items)[:count]
