"""Integration tests asserting the paper's qualitative claims end-to-end.

Each test names the claim and the paper section it comes from. These are the
"shape" checks DESIGN.md promises: who wins, what dominates, where the
trade-offs bend -- not absolute numbers.
"""

import pytest

from repro.codecs import get_codec, train_dictionary
from repro.core import (
    CompEngine,
    CompOpt,
    CompressionConfig,
    CostModel,
    CostParameters,
    MaxBlockDecodeLatency,
    MinCompressionSpeed,
)
from repro.core.config import config_grid
from repro.corpus import (
    CACHE1_TYPES,
    generate_ads_request,
    generate_cache_items,
    generate_kv_records,
    silesia_like_corpus,
)
from repro.perfmodel import DEFAULT_MACHINE
from repro.services.kvstore import SSTable


class TestSection1Figure1:
    """Fig. 1: metrics depend heavily on the data; order-of-magnitude spread."""

    @pytest.fixture(scope="class")
    def corpus_metrics(self):
        corpus = silesia_like_corpus(1 << 14)
        zstd = get_codec("zstd")
        out = {}
        for name, data in corpus.items():
            result = zstd.compress(data, 3)
            out[name] = (
                result.ratio,
                DEFAULT_MACHINE.compress_speed("zstd", result.counters),
            )
        return out

    def test_ratio_spread_exceeds_3x(self, corpus_metrics):
        ratios = [r for r, __ in corpus_metrics.values()]
        assert max(ratios) / min(ratios) > 3

    def test_speed_depends_on_data(self, corpus_metrics):
        speeds = [s for __, s in corpus_metrics.values()]
        assert max(speeds) / min(speeds) > 1.5

    def test_binary_hardest_markup_easiest(self, corpus_metrics):
        assert corpus_metrics["mozilla-like"][0] == min(
            r for r, __ in corpus_metrics.values()
        )
        assert corpus_metrics["xml-like"][0] == max(
            r for r, __ in corpus_metrics.values()
        )


class TestSection2Tradeoffs:
    """Section II-B: the two trade-off axes of LZ compressors."""

    def test_level_trades_compression_speed_for_ratio(self):
        data = silesia_like_corpus(1 << 14)["dickens-like"]
        zstd = get_codec("zstd")
        low = zstd.compress(data, 1)
        high = zstd.compress(data, 15)
        assert high.ratio > low.ratio
        assert DEFAULT_MACHINE.compress_speed(
            "zstd", high.counters
        ) < DEFAULT_MACHINE.compress_speed("zstd", low.counters)

    def test_entropy_stage_trades_ratio_for_decode_speed(self):
        """LZ4 (no entropy stage) decodes faster but compresses worse than
        zstd on the same parse-friendly data."""
        data = silesia_like_corpus(1 << 14)["dickens-like"]
        zstd_result = get_codec("zstd").compress(data, 3)
        lz4_result = get_codec("lz4").compress(data, 3)
        zstd_decode = get_codec("zstd").decompress(zstd_result.data)
        lz4_decode = get_codec("lz4").decompress(lz4_result.data)
        assert zstd_result.ratio > lz4_result.ratio
        assert DEFAULT_MACHINE.decompress_speed(
            "lz4", lz4_decode.counters
        ) > DEFAULT_MACHINE.decompress_speed("zstd", zstd_decode.counters)


class TestSection4Cache:
    """Section IV-C: dictionary compression for small typed items."""

    def test_dictionary_recovers_small_item_ratio(self):
        items = generate_cache_items(CACHE1_TYPES, 300, seed=21)
        payloads = [p for __, p in items if len(p) < 1024]
        dictionary = train_dictionary(payloads[:200], max_size=8192)
        zstd = get_codec("zstd")
        test_set = payloads[200:260]
        plain = sum(len(zstd.compress(p, 3).data) for p in test_set)
        dicted = sum(
            len(zstd.compress(p, 3, dictionary=dictionary.content).data)
            for p in test_set
        )
        raw = sum(len(p) for p in test_set)
        # plain compression struggles on small items; the dictionary
        # recovers a much better ratio.
        assert dicted < plain
        assert raw / dicted > 1.25 * (raw / plain)


class TestSection4KVStore:
    """Section IV-E / Fig. 13: block size trade-offs."""

    @pytest.fixture(scope="class")
    def sweep(self):
        entries = generate_kv_records(1500, seed=22)
        out = {}
        for block_size in (1024, 4096, 16384, 65536):
            table = SSTable.build(entries, level=1, block_size=block_size)
            key = entries[700][0]
            __, __, decode_seconds = table.get(key)
            ratio = table.stats.raw_bytes / table.stats.stored_bytes
            out[block_size] = (ratio, decode_seconds)
        return out

    def test_ratio_improves_with_block_size(self, sweep):
        ratios = [sweep[b][0] for b in sorted(sweep)]
        assert ratios == sorted(ratios)

    def test_decode_time_grows_with_block_size(self, sweep):
        times = [sweep[b][1] for b in sorted(sweep)]
        assert times[-1] > times[0] * 4


class TestSection5SensitivityStudies:
    """Section V-B: the three sensitivity studies' qualitative outcomes."""

    @pytest.fixture(scope="class")
    def ads_engine(self):
        return CompEngine([generate_ads_request("B", seed=s) for s in range(2)])

    def test_study1_speed_constraint_excludes_slow_configs(self, ads_engine):
        params = CostParameters.from_price_book(storage_weight=0.0, beta=1e-7)
        opt = CompOpt(
            ads_engine, CostModel(params), [MinCompressionSpeed(200e6)]
        )
        grid = config_grid(["zstd", "lz4", "zlib"], levels=[1, 3, 6, 9])
        result = opt.optimize(grid)
        assert result.best is not None
        # zlib can't reach 200 MB/s at any level (Fig. 15a's filtering)
        assert all(
            not r.feasible for r in result.ranked if r.config.algorithm == "zlib"
        )
        assert result.best.config.algorithm in ("zstd", "lz4")

    def test_study1_best_beats_worst_substantially(self, ads_engine):
        """The paper reports the best option 73% below the worst."""
        params = CostParameters.from_price_book(storage_weight=0.0, beta=1e-7)
        opt = CompOpt(ads_engine, CostModel(params))
        grid = config_grid(["zstd", "lz4", "zlib"], levels=[1, 3, 6, 9])
        result = opt.optimize(grid)
        assert result.best_any.total_cost < 0.7 * result.worst.total_cost

    def test_study2_latency_constraint_changes_winner(self):
        samples = [b"".join(
            k + b"\x00" + v for k, v in generate_kv_records(800, seed=23)
        )]
        engine = CompEngine(samples)
        params = CostParameters.from_price_book(
            network_weight=0.0, storage_kind="flash", beta=1e-7,
        )
        grid = [
            CompressionConfig("zstd", 1, b)
            for b in (4096, 8192, 16384, 32768, 65536)
        ]
        unconstrained = CompOpt(engine, CostModel(params)).optimize(grid)
        tight_latency = unconstrained.ranked[0]  # cheapest overall
        # pick a latency budget that excludes the biggest blocks
        threshold = engine.measure(
            CompressionConfig("zstd", 1, 16384)
        ).decode_seconds_per_block * 1.05
        constrained = CompOpt(
            engine, CostModel(params), [MaxBlockDecodeLatency(threshold)]
        ).optimize(grid)
        assert constrained.best is not None
        assert constrained.best.config.block_size <= 16384

    def test_study3_window_cost_plateau(self):
        """Fig. 16: cost flattens once the window covers the redundancy."""
        from repro.core import CompSim
        from repro.corpus import generate_text, generate_records

        segment = generate_text(8000, seed=24)
        data = segment + generate_records(12000, seed=25) + segment
        engine = CompEngine([data])
        sim = CompSim(engine)
        params = CostParameters.from_price_book(storage_weight=0.0, beta=1e-7)
        model = CostModel(params)
        totals = {}
        for window_log in (10, 14, 16, 18, 20):
            name = f"hw-{window_log}"
            sim.add_accelerator(name, window_log=window_log, gamma=10.0)
            metrics = engine.measure(CompressionConfig(name, 1))
            totals[window_log] = model.total(metrics)
        assert totals[18] == pytest.approx(totals[20], rel=0.05)
        assert totals[10] > totals[18]
