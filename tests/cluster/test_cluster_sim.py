"""End-to-end invariants of the cluster simulator.

Four families, all on the real scenarios (no mocks):

- **determinism** — the rendered scorecard is byte-identical across
  runs and across ``--jobs`` (the in-process codec-cache path and the
  executor path must be indistinguishable in output), and genuinely
  seed-sensitive;
- **fleet rollup** — the merged per-shard windows equal the one-shot
  global histograms the report records independently in its completion
  handler, proving the fold is lossless on a real simulation;
- **scale before page** — on the surge scenario the autoscaler engages
  before the fleet shed-rate SLO would page, and switching it off makes
  the same seeded traffic page;
- **no stranding** — scale-down drains: every retired node served or
  expired everything it admitted, and the fleet-wide request accounting
  balances exactly.

Runs are memoized per parameter set so the suite pays for each
simulation once.
"""

from functools import lru_cache

import pytest

from repro.cluster import (
    Autoscaler,
    CLUSTER_SCENARIOS,
    format_cluster_scorecard,
    run_cluster_simulation,
)
from repro.cluster.simulate import _cluster_tenants
from repro.obs.metrics import Histogram
from repro.serving.slos import (
    ALL_TENANTS,
    WINDOW_LATENCY,
    WINDOW_OUTCOMES,
    WINDOW_VERDICTS,
)
from repro.obs.slo import metric_total


@lru_cache(maxsize=None)
def _run(
    scenario: str,
    seed: int = 7,
    scale: float = 0.25,
    jobs: int = 1,
    autoscale=None,
    rebalance=None,
):
    return run_cluster_simulation(
        scenario,
        seed=seed,
        scale=scale,
        jobs=jobs,
        autoscale=autoscale,
        rebalance=rebalance,
    )


# -- determinism --------------------------------------------------------------


def test_scorecard_byte_identical_across_runs():
    a = run_cluster_simulation("fleet-steady", seed=7, scale=0.25)
    b = run_cluster_simulation("fleet-steady", seed=7, scale=0.25)
    assert format_cluster_scorecard(a) == format_cluster_scorecard(b)


def test_scorecard_differs_across_seeds():
    a = _run("fleet-steady", seed=7)
    b = _run("fleet-steady", seed=8)
    assert format_cluster_scorecard(a) != format_cluster_scorecard(b)


def test_jobs_path_byte_identical_to_in_process():
    """The executor path (jobs>1) and the memoized in-process path
    (jobs=1) must render the same scorecard — the cluster-level twin of
    the parallel engine's --jobs determinism guarantee."""
    solo = _run("fleet-steady", seed=7)
    pooled = run_cluster_simulation("fleet-steady", seed=7, scale=0.25, jobs=2)
    assert format_cluster_scorecard(solo) == format_cluster_scorecard(pooled)


def test_scenarios_are_registered_and_self_describing():
    for name, sc in CLUSTER_SCENARIOS.items():
        assert sc.name == name
        assert sc.description
        assert sc.initial_nodes >= 1


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        run_cluster_simulation("fleet-nonsense", seed=7)


# -- fleet rollup -------------------------------------------------------------


def test_fleet_fold_equals_one_shot_global_histogram():
    """The fleet registry (per-shard windows merged by index, then
    folded across time) must agree exactly with the one-shot latency
    histogram the report records at each completion — same count, same
    percentiles. Any double-count or dropped window breaks this."""
    report = _run("fleet-steady", seed=7)
    fold = report.fleet_registry.get(WINDOW_LATENCY)
    assert isinstance(fold, Histogram)
    assert fold.count(tenant=ALL_TENANTS) == report.latency.count(source="all")
    for p in (50, 90, 99):
        assert fold.percentile(p, tenant=ALL_TENANTS) == pytest.approx(
            report.latency.percentile(p, source="all"), rel=0, abs=0
        )
    assert fold.sum(tenant=ALL_TENANTS) == pytest.approx(
        report.latency.sum(source="all")
    )


def test_fleet_fold_counts_match_shard_sums():
    report = _run("fleet-steady", seed=7)
    registry = report.fleet_registry
    outcomes = metric_total(registry, WINDOW_OUTCOMES, result="on_time")
    assert outcomes == report.on_time
    assert metric_total(registry, WINDOW_OUTCOMES, result="tardy") == report.tardy
    for verdict, total in (
        ("admit", report.admitted),
        ("throttle", report.throttled),
        ("shed", report.shed),
        ("expired", report.expired),
    ):
        assert metric_total(registry, WINDOW_VERDICTS, verdict=verdict) == total
    # and the shard table is the same events partitioned by node
    assert sum(s.admitted for s in report.shards) == report.admitted
    assert sum(s.served for s in report.shards) == report.served
    assert sum(s.routed for s in report.shards) == report.arrivals


# -- scale before page --------------------------------------------------------


def test_surge_autoscaler_engages_before_any_page():
    """With the autoscaler on, the seeded surge scales up early and the
    fleet never pages; the identical traffic with the control loops off
    pages on shed rate. This is the scenario's reason to exist."""
    scaled = _run("fleet-surge", seed=7, scale=1.0)
    frozen = _run("fleet-surge", seed=7, scale=1.0, autoscale=False, rebalance=False)

    first_up = scaled.first_scale_up_at()
    assert first_up is not None, "surge never triggered a scale-up"
    assert scaled.nodes_peak > scaled.nodes_initial
    assert scaled.total_page_seconds() == 0.0

    first_page = frozen.first_page_at()
    assert first_page is not None, "frozen fleet absorbed the surge"
    assert first_up < first_page
    assert frozen.shed + frozen.expired > scaled.shed + scaled.expired
    assert frozen.total_page_seconds() > 0.0


def test_surge_scale_ups_report_key_movement():
    """Every scale-up reports how many tenants re-homed; adding nodes
    must move *some* tenants (that is the point) but never all of them
    (minimal movement, inherited from the ring)."""
    report = _run("fleet-surge", seed=7, scale=1.0)
    ups = [e for e in report.scale_events if e.action == Autoscaler.UP]
    assert ups
    tenant_count = len(_cluster_tenants(CLUSTER_SCENARIOS["fleet-surge"]))
    assert any(e.moved_tenants > 0 for e in ups)
    assert all(e.moved_tenants < tenant_count for e in ups)


# -- hotspot rebalancing ------------------------------------------------------


def test_hotspot_rebalancer_moves_only_the_hot_tenant():
    report = _run("fleet-hotspot", seed=7, scale=1.0)
    assert report.rebalance_events, "hotspot never triggered a rebalance"
    sc = CLUSTER_SCENARIOS["fleet-hotspot"]
    boosted = max(_cluster_tenants(sc), key=lambda t: t.weight).name
    assert {e.tenant for e in report.rebalance_events} == {boosted}
    for event in report.rebalance_events:
        assert event.from_nodes != event.to_nodes


# -- no stranding -------------------------------------------------------------


def test_fleet_request_accounting_balances():
    for name in ("fleet-steady", "fleet-surge"):
        report = _run(name, seed=7)
        # front door: every arrival got exactly one admission verdict
        assert report.admitted + report.throttled + report.shed == report.arrivals
        # back door: admitted requests are served, expired, or still
        # queued when the horizon ends — never duplicated or lost
        backlog = report.admitted - report.served - report.expired
        assert backlog >= 0
        assert report.served == report.on_time + report.tardy


def test_scale_down_drains_without_stranding():
    """fleet-steady trims idle nodes; every node it retired must have
    fully drained first (admitted == served + expired, nothing left)."""
    report = _run("fleet-steady", seed=7, scale=1.0)
    downs = [e for e in report.scale_events if e.action == Autoscaler.DOWN]
    assert downs, "steady fleet never scaled down"
    retired = [s for s in report.shards if s.status == "retired"]
    assert retired, "a scale-down must end in a retirement"
    for shard in retired:
        assert shard.retired_at is not None
        assert shard.admitted == shard.served + shard.expired, (
            f"{shard.name} retired with requests stranded"
        )
