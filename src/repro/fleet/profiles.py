"""The synthetic fleet registry.

Each :class:`ServiceProfile` describes one service's compute footprint and
compression behaviour. The registry is calibrated so the fleet aggregates
land on the paper's published numbers:

- ~4.6% of all fleet cycles in (de)compression; 3.9% Zstd, 0.4% LZ4,
  0.3% Zlib (Section III-B);
- per-category Zstd shares spanning 1.8%..21.2% with Data Warehouse at the
  top (Fig. 2);
- decompression dominating most categories (Fig. 3);
- levels 1-4 carrying more than half of level-attributed cycles, with Feed
  above 80% (Fig. 4);
- block sizes from sub-KB cache items to 256KB warehouse blocks (Fig. 5).

Analytically (before sampling noise) this registry yields: total 4.61%,
zstd 3.90%, lz4 0.42%, zlib 0.30%; DW 21.3%, KV 11.3%, Cache 3.9%,
Ads 3.3%, Web 1.8%, Feed 1.8%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

CATEGORIES = ["Ads", "Cache", "Data Warehouse", "Feed", "Key-Value Store", "Web"]


@dataclass(frozen=True)
class ServiceProfile:
    """Compression behaviour of one fleet service."""

    name: str
    category: str
    #: share of total fleet compute cycles consumed by this service
    fleet_compute_share: float
    #: fraction of this service's cycles spent in (de)compression
    compression_share: float
    #: algorithm -> fraction of the compression cycles (sums to 1)
    algorithm_mix: Dict[str, float]
    #: fraction of compression cycles that are *compression* (rest decode)
    compress_fraction: float
    #: zstd level -> fraction of zstd compression cycles (sums to 1)
    level_mix: Dict[int, float]
    #: (median block size bytes, lognormal sigma)
    block_size: Tuple[int, float]

    def __post_init__(self) -> None:
        if not 0 <= self.compression_share <= 1:
            raise ValueError("compression_share must be in [0, 1]")
        if self.compression_share > 0:
            mix_total = sum(self.algorithm_mix.values())
            if abs(mix_total - 1.0) > 1e-6:
                raise ValueError(f"{self.name}: algorithm mix sums to {mix_total}")
        if self.level_mix:
            level_total = sum(self.level_mix.values())
            if abs(level_total - 1.0) > 1e-6:
                raise ValueError(f"{self.name}: level mix sums to {level_total}")


def _p(name, category, fleet, comp_share, mix, comp_frac, levels, block):
    return ServiceProfile(
        name=name,
        category=category,
        fleet_compute_share=fleet,
        compression_share=comp_share,
        algorithm_mix=mix,
        compress_fraction=comp_frac,
        level_mix=levels,
        block_size=block,
    )


_Z = "zstd"
_L = "lz4"
_G = "zlib"

#: The default fleet: 25 compression-using services across six categories
#: plus a compression-free infrastructure bucket that dilutes the aggregates
#: to the published fleet-wide percentages.
DEFAULT_FLEET: List[ServiceProfile] = [
    # -- Web: big fleet share, modest compression, zlib for compatibility.
    _p("web_frontend", "Web", 0.19, 0.026,
       {_Z: 0.60, _G: 0.35, _L: 0.05}, 0.35,
       {1: 0.6, 3: 0.3, 6: 0.1}, (4096, 0.8)),
    _p("web_api", "Web", 0.08, 0.038,
       {_Z: 0.72, _G: 0.23, _L: 0.05}, 0.40,
       {1: 0.5, 3: 0.35, 6: 0.15}, (8192, 0.9)),
    _p("web_static", "Web", 0.05, 0.008,
       {_G: 0.8, _Z: 0.2}, 0.20,
       {1: 0.7, 3: 0.3}, (4096, 1.0)),
    _p("web_logging", "Web", 0.04, 0.055,
       {_Z: 0.55, _G: 0.35, _L: 0.10}, 0.75,
       {1: 0.45, 3: 0.35, 6: 0.20}, (65536, 0.6)),
    # -- Feed: latency-critical ranking; almost all cycles at low levels.
    _p("feed_ranker", "Feed", 0.10, 0.019,
       {_Z: 0.85, _L: 0.15}, 0.45,
       {1: 0.65, 2: 0.20, 3: 0.10, 6: 0.05}, (2048, 0.9)),
    _p("feed_aggregator", "Feed", 0.06, 0.026,
       {_Z: 0.90, _L: 0.10}, 0.40,
       {1: 0.55, 2: 0.25, 3: 0.12, 4: 0.08}, (4096, 0.8)),
    _p("feed_media_meta", "Feed", 0.03, 0.013,
       {_Z: 1.0}, 0.35,
       {1: 0.9, 2: 0.1}, (1024, 1.0)),
    # -- Ads: network compression of inference requests and event logs.
    _p("ads_inference", "Ads", 0.07, 0.045,
       {_Z: 0.90, _L: 0.10}, 0.50,
       {1: 0.45, 2: 0.20, 3: 0.20, 4: 0.15}, (32768, 1.0)),
    _p("ads_features", "Ads", 0.04, 0.035,
       {_Z: 0.95, _L: 0.05}, 0.40,
       {1: 0.5, 3: 0.3, 4: 0.2}, (16384, 1.0)),
    _p("ads_training_data", "Ads", 0.02, 0.060,
       {_Z: 1.0}, 0.55,
       {1: 0.4, 4: 0.3, 7: 0.3}, (131072, 0.7)),
    _p("ads_events", "Ads", 0.03, 0.030,
       {_Z: 0.55, _L: 0.45}, 0.45,
       {1: 0.6, 3: 0.4}, (8192, 1.0)),
    _p("ads_realtime_log", "Ads", 0.02, 0.045,
       {_L: 0.95, _Z: 0.05}, 0.70,
       {1: 1.0}, (16384, 0.8)),
    # -- Cache: small items, dictionaries, some lz4 on the hottest paths.
    _p("cache_objects", "Cache", 0.05, 0.065,
       {_Z: 0.75, _L: 0.25}, 0.35,
       {1: 0.3, 3: 0.45, 6: 0.15, 11: 0.10}, (400, 1.1)),
    _p("cache_graph", "Cache", 0.04, 0.035,
       {_Z: 0.80, _L: 0.20}, 0.30,
       {1: 0.35, 3: 0.45, 6: 0.20}, (250, 1.0)),
    _p("cache_lookaside", "Cache", 0.02, 0.075,
       {_Z: 0.60, _L: 0.40}, 0.30,
       {1: 0.5, 3: 0.5}, (800, 1.2)),
    _p("cache_session", "Cache", 0.02, 0.045,
       {_Z: 0.7, _L: 0.3}, 0.35,
       {1: 0.6, 3: 0.4}, (300, 1.0)),
    # -- Data Warehouse: the heaviest compression users, high levels common.
    _p("dw_ingestion", "Data Warehouse", 0.030, 0.285,
       {_Z: 1.0}, 0.80,
       {7: 0.70, 8: 0.15, 4: 0.15}, (262144, 0.3)),
    _p("dw_shuffle", "Data Warehouse", 0.018, 0.305,
       {_Z: 1.0}, 0.73,
       {1: 0.85, 2: 0.15}, (262144, 0.3)),
    _p("dw_spark", "Data Warehouse", 0.030, 0.135,
       {_Z: 1.0}, 0.25,
       {1: 0.70, 3: 0.20, 7: 0.10}, (262144, 0.3)),
    _p("dw_ml_jobs", "Data Warehouse", 0.016, 0.080,
       {_Z: 1.0}, 0.55,
       {1: 0.80, 2: 0.20}, (131072, 0.5)),
    _p("dw_backup", "Data Warehouse", 0.010, 0.300,
       {_Z: 0.92, _G: 0.08}, 0.85,
       {7: 0.35, 12: 0.35, 19: 0.30}, (262144, 0.2)),
    # -- Key-Value Store: block compression during compaction + reads.
    _p("kv_zippy", "Key-Value Store", 0.030, 0.125,
       {_Z: 0.90, _L: 0.10}, 0.55,
       {1: 0.65, 3: 0.25, 6: 0.10}, (16384, 0.6)),
    _p("kv_timeseries", "Key-Value Store", 0.015, 0.150,
       {_Z: 0.95, _L: 0.05}, 0.60,
       {1: 0.5, 3: 0.3, 6: 0.2}, (65536, 0.5)),
    _p("kv_secondary_index", "Key-Value Store", 0.010, 0.100,
       {_Z: 0.85, _L: 0.15}, 0.45,
       {1: 0.7, 3: 0.3}, (16384, 0.6)),
    _p("kv_config_store", "Key-Value Store", 0.005, 0.090,
       {_Z: 0.9, _G: 0.1}, 0.40,
       {1: 0.5, 3: 0.5}, (4096, 0.8)),
    # -- Everything else: compute with no compression at all, sized so the
    #    fleet-wide zstd share lands on 3.9%.
    _p("infra_other", "Infra", 0.2514, 0.0, {}, 0.0, {}, (4096, 1.0)),
]


def fleet_by_category(
    fleet: List[ServiceProfile] = None,
) -> Dict[str, List[ServiceProfile]]:
    """Group profiles by service category."""
    fleet = fleet if fleet is not None else DEFAULT_FLEET
    grouped: Dict[str, List[ServiceProfile]] = {}
    for profile in fleet:
        grouped.setdefault(profile.category, []).append(profile)
    return grouped


def total_compute_share(fleet: List[ServiceProfile] = None) -> float:
    """Total compute weight of the registry (normalized by the profiler)."""
    fleet = fleet if fleet is not None else DEFAULT_FLEET
    return sum(p.fleet_compute_share for p in fleet)
