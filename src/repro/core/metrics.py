"""Compression metrics: the three quantities the paper evaluates.

"There are three important compression metrics ...: compression ratio,
compression speed, and decompression speed" (Section I). Block-granular use
cases additionally care about decompression time per block (Section IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompressionMetrics:
    """Measured performance of one configuration on one sample set."""

    #: original bytes / compressed bytes (higher is better)
    ratio: float
    #: bytes/second of input consumed while compressing
    compression_speed: float
    #: bytes/second of output produced while decompressing
    decompression_speed: float
    #: total input bytes measured
    input_bytes: int
    #: total compressed bytes produced
    compressed_bytes: int
    #: number of blocks the samples were split into
    block_count: int
    #: mean seconds to decompress one block (read-latency driver, Fig. 13)
    decode_seconds_per_block: float
    #: share of compression cycles spent in match finding (Fig. 7's split)
    match_finding_share: float = 0.0

    @property
    def compress_seconds(self) -> float:
        """Total seconds spent compressing the sample set."""
        if self.compression_speed <= 0:
            return 0.0
        return self.input_bytes / self.compression_speed

    @property
    def decompress_seconds(self) -> float:
        """Total seconds spent decompressing the sample set.

        ``decompression_speed`` is measured in bytes of *output* produced
        per second, and decompressing the sample set reproduces the
        original data, so the output volume equals ``input_bytes`` — not
        ``compressed_bytes``, which is the (smaller) consumed volume.
        Dividing output bytes by output rate is the exact inverse of how
        :class:`repro.core.engine.CompEngine` derives the speed
        (``input_bytes / decompress_seconds``), so the round trip is
        lossless.
        """
        if self.decompression_speed <= 0:
            return 0.0
        output_bytes = self.input_bytes  # decompression restores the input
        return output_bytes / self.decompression_speed

    @property
    def space_saving(self) -> float:
        """Fraction of bytes eliminated, 1 - 1/ratio."""
        if self.ratio <= 0:
            return 0.0
        return 1.0 - 1.0 / self.ratio
