"""ADS1 request payloads: dense float and sparse integer embeddings.

The paper describes ads inference requests as "dense float and sparse
integer embeddings" whose mix "varies significantly between different
models", with sparser requests compressing better (Section IV-D, Fig. 12).
Model A is the highest-traffic model with the largest requests; model B is
smaller; model C is model B's data under a different wire serialization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.corpus.distributions import SeededSampler


@dataclass(frozen=True)
class AdsModelSpec:
    """Shape of one ranking model's request payloads."""

    name: str
    #: average request size in bytes
    request_size: int
    #: fraction of the payload carried by sparse integer embeddings
    sparse_fraction: float
    #: fraction of sparse entries that are zero (drives compressibility)
    sparse_zero_rate: float
    #: "binary" packs raw arrays; "text" uses a JSON-like wire format
    serialization: str = "binary"


ADS_MODELS = {
    "A": AdsModelSpec("A", request_size=65536, sparse_fraction=0.70, sparse_zero_rate=0.85),
    "B": AdsModelSpec("B", request_size=16384, sparse_fraction=0.40, sparse_zero_rate=0.75),
    "C": AdsModelSpec(
        "C", request_size=16384, sparse_fraction=0.40, sparse_zero_rate=0.75,
        serialization="text",
    ),
}


def _dense_payload(sampler: SeededSampler, byte_budget: int) -> np.ndarray:
    count = max(1, byte_budget // 4)
    # Bounded activations: float32 with correlated low-order structure.
    values = sampler.rng.normal(0.0, 0.25, size=count).astype(np.float32)
    values = np.round(values, 3)  # quantized activations, as served models use
    return values


def _sparse_payload(sampler: SeededSampler, byte_budget: int, zero_rate: float) -> np.ndarray:
    count = max(1, byte_budget // 8)
    ids = sampler.rng.zipf(1.3, size=count).astype(np.int64)
    mask = sampler.rng.uniform(size=count) < zero_rate
    ids[mask] = 0
    return ids


def generate_ads_request(model: str, seed: int = 0) -> bytes:
    """One serialized inference request for the given model ("A"/"B"/"C")."""
    spec = ADS_MODELS[model]
    sampler = SeededSampler(seed)
    sparse_bytes = int(spec.request_size * spec.sparse_fraction)
    dense_bytes = spec.request_size - sparse_bytes
    dense = _dense_payload(sampler, dense_bytes)
    sparse = _sparse_payload(sampler, sparse_bytes, spec.sparse_zero_rate)
    header = {
        "model": spec.name,
        "version": 7,
        "dense_len": int(dense.size),
        "sparse_len": int(sparse.size),
    }
    if spec.serialization == "binary":
        out = bytearray()
        out.extend(json.dumps(header, sort_keys=True).encode())
        out.append(0)
        out.extend(dense.tobytes())
        out.extend(sparse.tobytes())
        return bytes(out)
    # Text serialization: same data, digits on the wire (model C).
    payload = {
        "header": header,
        "dense": [float(v) for v in dense[: dense.size]],
        "sparse": [int(v) for v in sparse[: sparse.size]],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
