"""zlib container (RFC 1950) and the public ZlibCompressor class."""

from __future__ import annotations

from typing import Dict, Optional

from repro.codecs.base import (
    Compressor,
    CorruptDataError,
    StageCounters,
    register_codec,
)
from repro.codecs.checksum import adler32, crc32
from repro.codecs.deflate import deflate as denc
from repro.codecs.deflate import inflate as ddec
from repro.codecs.deflate import tables as dtables
from repro.codecs.matchfinders import MatchFinderParams, finder_for_strategy

#: zlib's configuration_table: level -> (strategy, search depth, lazy, nice).
_LEVEL_TABLE: Dict[int, MatchFinderParams] = {0: None}  # type: ignore[dict-item]
_ZLIB_CONFIG = {
    # Depths scaled down from zlib's configuration_table for pure-Python
    # wall-clock; ordering and strategy switches (greedy below 4, lazy above)
    # are preserved.
    1: ("greedy", 4, 0, 8),
    2: ("greedy", 8, 0, 16),
    3: ("greedy", 16, 0, 32),
    4: ("lazy", 12, 1, 16),
    5: ("lazy", 16, 1, 32),
    6: ("lazy", 32, 1, 128),
    7: ("lazy", 48, 1, 128),
    8: ("lazy", 64, 1, 258),
    9: ("lazy", 96, 1, 258),
}
for _level, (_strategy, _depth, _lazy, _nice) in _ZLIB_CONFIG.items():
    _LEVEL_TABLE[_level] = MatchFinderParams(
        window_log=15,
        hash_log=15,
        search_depth=_depth,
        min_match=dtables.MIN_MATCH,
        target_length=_nice,
        lazy_steps=_lazy,
        strategy=_strategy,
        max_match=dtables.MAX_MATCH,
        max_offset=dtables.MAX_DISTANCE,
    )


class ZlibCompressor(Compressor):
    """zlib codec with levels 0..9 (0 = stored), RFC 1950/1951 compatible."""

    name = "zlib"
    min_level = 0
    max_level = 9
    default_level = 6

    def params_for_level(self, level: int) -> Optional[MatchFinderParams]:
        """Match-finder parameters for ``level`` (None for stored)."""
        return _LEVEL_TABLE[level]

    def _compress(
        self,
        data: bytes,
        level: int,
        dictionary: Optional[bytes],
        counters: StageCounters,
    ) -> bytes:
        if level == 0:
            tokens = []
        else:
            params = _LEVEL_TABLE[level]
            finder = finder_for_strategy(params.strategy)
            tokens = finder.parse(data, 0, params, counters)
        stream = denc.encode_stream(data, 0, tokens, counters, level)
        # RFC 1950 header: CM=8, CINFO=7 (32K window); FLEVEL from level.
        flevel = 0 if level < 2 else (1 if level < 6 else (2 if level == 6 else 3))
        cmf = 0x78
        flg = flevel << 6
        remainder = (cmf * 256 + flg) % 31
        if remainder:
            flg += 31 - remainder
        out = bytearray((cmf, flg))
        out.extend(stream)
        out.extend(adler32(data).to_bytes(4, "big"))
        return bytes(out)

    def _decompress(
        self,
        payload: bytes,
        dictionary: Optional[bytes],
        counters: StageCounters,
    ) -> bytes:
        if len(payload) < 6:
            raise CorruptDataError("zlib stream too short")
        out = bytearray()
        pos = 0
        # Concatenated members decode as the concatenation of their
        # contents -- the multi-frame contract the parallel chunked
        # engine relies on (each chunk is one independent member).
        while pos < len(payload):
            if len(payload) - pos < 6:
                raise CorruptDataError("truncated zlib member")
            cmf, flg = payload[pos], payload[pos + 1]
            if cmf & 0x0F != 8:
                raise CorruptDataError("unsupported zlib compression method")
            if (cmf * 256 + flg) % 31:
                raise CorruptDataError("bad zlib header check")
            if flg & 0x20:
                raise CorruptDataError("preset dictionaries are not supported")
            base = len(out)
            data, end = ddec.decode_stream(
                payload,
                counters,
                budget_check=lambda produced, base=base: self._check_output_budget(
                    base + produced
                ),
                start=pos + 2,
            )
            if end + 4 > len(payload):
                raise CorruptDataError("missing Adler-32 trailer")
            stored = int.from_bytes(payload[end : end + 4], "big")
            if stored != adler32(data):
                raise CorruptDataError("Adler-32 checksum mismatch")
            out.extend(data)
            pos = end + 4
        return bytes(out)


class GzipCompressor(ZlibCompressor):
    """gzip container (RFC 1952) around the same DEFLATE engine.

    Interoperable with the reference implementation: stdlib ``gzip`` can
    decode our frames and vice versa. Timestamps are zeroed so output is
    deterministic.
    """

    name = "gzip"

    def _compress(
        self,
        data: bytes,
        level: int,
        dictionary: Optional[bytes],
        counters: StageCounters,
    ) -> bytes:
        if level == 0:
            tokens = []
        else:
            params = _LEVEL_TABLE[level]
            finder = finder_for_strategy(params.strategy)
            tokens = finder.parse(data, 0, params, counters)
        stream = denc.encode_stream(data, 0, tokens, counters, level)
        xfl = 2 if level == 9 else (4 if level <= 2 else 0)
        header = bytes(
            [0x1F, 0x8B, 8, 0, 0, 0, 0, 0, xfl, 255]  # magic, CM, FLG, MTIME, XFL, OS
        )
        out = bytearray(header)
        out.extend(stream)
        out.extend(crc32(data).to_bytes(4, "little"))
        out.extend((len(data) & 0xFFFFFFFF).to_bytes(4, "little"))
        return bytes(out)

    @staticmethod
    def _member_header_end(payload: bytes, pos: int) -> int:
        """Validate one member header at ``pos``; returns the deflate offset."""
        if len(payload) - pos < 18:
            raise CorruptDataError("gzip stream too short")
        if payload[pos : pos + 2] != b"\x1f\x8b":
            raise CorruptDataError("bad gzip magic")
        if payload[pos + 2] != 8:
            raise CorruptDataError("unsupported gzip compression method")
        flags = payload[pos + 3]
        pos += 10
        if flags & 0x04:  # FEXTRA
            if pos + 2 > len(payload):
                raise CorruptDataError("truncated gzip extra field")
            extra_len = int.from_bytes(payload[pos : pos + 2], "little")
            pos += 2 + extra_len
        if flags & 0x08:  # FNAME
            end = payload.find(b"\x00", pos)
            if end < 0:
                raise CorruptDataError("unterminated gzip file name")
            pos = end + 1
        if flags & 0x10:  # FCOMMENT
            end = payload.find(b"\x00", pos)
            if end < 0:
                raise CorruptDataError("unterminated gzip comment")
            pos = end + 1
        if flags & 0x02:  # FHCRC
            pos += 2
        if pos + 8 > len(payload):
            raise CorruptDataError("gzip stream truncated")
        return pos

    def _decompress(
        self,
        payload: bytes,
        dictionary: Optional[bytes],
        counters: StageCounters,
    ) -> bytes:
        if len(payload) < 18:
            raise CorruptDataError("gzip stream too short")
        out = bytearray()
        pos = 0
        # RFC 1952 multi-member: a gzip file is any number of concatenated
        # members, decoded as the concatenation of their contents (stdlib
        # ``gzip`` does the same, which the oracle tests exploit).
        while pos < len(payload):
            deflate_start = self._member_header_end(payload, pos)
            base = len(out)
            data, end = ddec.decode_stream(
                payload,
                counters,
                budget_check=lambda produced, base=base: self._check_output_budget(
                    base + produced
                ),
                start=deflate_start,
            )
            if end + 8 > len(payload):
                raise CorruptDataError("missing gzip trailer")
            stored_crc = int.from_bytes(payload[end : end + 4], "little")
            stored_size = int.from_bytes(payload[end + 4 : end + 8], "little")
            if stored_crc != crc32(data):
                raise CorruptDataError("gzip CRC-32 mismatch")
            if stored_size != len(data) & 0xFFFFFFFF:
                raise CorruptDataError("gzip size mismatch")
            out.extend(data)
            pos = end + 8
        return bytes(out)


register_codec("zlib", ZlibCompressor)
register_codec("gzip", GzipCompressor)
