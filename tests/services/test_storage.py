"""SimStorage: the durable/pending split, torn writes, dropped syncs."""

import pytest

from repro.faults import (
    CrashInjector,
    CrashPlan,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SimulatedCrash,
)
from repro.services.kvstore.storage import SYNC_SITE, SimStorage


class TestBasicOps:
    def test_append_then_read(self):
        storage = SimStorage()
        storage.append("f", b"hello ")
        storage.append("f", b"world")
        assert storage.read("f") == b"hello world"
        assert storage.size("f") == 11

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            SimStorage().read("ghost")

    def test_truncate(self):
        storage = SimStorage()
        storage.append("f", b"0123456789")
        storage.sync("f")
        storage.truncate("f", 4)
        assert storage.read("f") == b"0123"

    def test_list_by_prefix(self):
        storage = SimStorage()
        for name in ("wal-000001.log", "wal-000000.log", "sst-000000.sst"):
            storage.write_file(name, b"x")
        assert storage.list("wal-") == ["wal-000000.log", "wal-000001.log"]

    def test_delete(self):
        storage = SimStorage()
        storage.write_file("f", b"x")
        storage.delete("f")
        assert not storage.exists("f")

    def test_pointer_swap(self):
        storage = SimStorage()
        assert storage.get_pointer("CURRENT") is None
        storage.set_pointer("CURRENT", "manifest-000001.mf")
        assert storage.get_pointer("CURRENT") == "manifest-000001.mf"


class TestDurability:
    def test_unsynced_bytes_die_in_a_crash(self):
        storage = SimStorage(seed=3)
        storage.append("f", b"durable")
        storage.sync("f")
        storage.append("f", b"volatile")
        storage.crash()
        # the synced prefix survives; the pending tail is torn strictly short
        data = storage.read("f")
        assert data.startswith(b"durable")
        assert len(data) < len(b"durablevolatile")

    def test_tear_is_deterministic_per_seed(self):
        def survivors(seed):
            storage = SimStorage(seed=seed)
            storage.append("f", b"A" * 100)
            storage.crash()
            return storage.read("f")

        assert survivors(5) == survivors(5)
        # with 100 pending bytes, two seeds almost surely tear differently
        assert len(survivors(5)) != len(survivors(6)) or survivors(5) == survivors(6)

    def test_write_file_is_crash_proof(self):
        storage = SimStorage(seed=1)
        storage.write_file("sst-000000.sst", b"atomic install")
        storage.crash()
        assert storage.read("sst-000000.sst") == b"atomic install"

    def test_pointers_survive_crashes(self):
        storage = SimStorage(seed=1)
        storage.set_pointer("CURRENT", "manifest-000002.mf")
        storage.crash()
        assert storage.get_pointer("CURRENT") == "manifest-000002.mf"

    def test_in_flight_tail_never_survives_whole(self):
        # the invariant the WAL's no-resurrection guarantee rests on:
        # whatever the seed, at least one pending byte is always lost
        for seed in range(25):
            storage = SimStorage(seed=seed)
            storage.append("f", b"synced|")
            storage.sync("f")
            storage.append("f", b"record")
            storage.crash()
            assert storage.read("f") != b"synced|record"


class TestFaultHooks:
    def _dropping_injector(self):
        return FaultInjector(
            FaultPlan("drops", (FaultSpec(SYNC_SITE, "drop", 1.0),)), seed=1
        )

    def test_dropped_sync_leaves_tail_volatile(self):
        storage = SimStorage(seed=2, fault_injector=self._dropping_injector())
        storage.append("f", b"acked-but-doomed")
        assert storage.sync("f") is False
        assert storage.stats.dropped_syncs == 1
        storage.crash()
        assert len(storage.read("f")) < len(b"acked-but-doomed")

    def test_crash_point_raises_when_armed(self):
        injector = CrashInjector(CrashPlan.single("kvstore.flush.sst"))
        storage = SimStorage(crash_injector=injector)
        with pytest.raises(SimulatedCrash):
            storage.crash_point("kvstore.flush.sst")

    def test_crash_point_noop_without_injector(self):
        SimStorage().crash_point("kvstore.flush.sst")  # must not raise
