"""CLI tests (direct main() invocation, no subprocesses)."""

import pytest

from repro.cli import main
from repro.corpus import generate_records


@pytest.fixture()
def sample_file(tmp_path):
    path = tmp_path / "sample.bin"
    path.write_bytes(generate_records(8192, seed=5))
    return path


class TestCompressDecompress:
    def test_roundtrip(self, tmp_path, sample_file, capsys):
        compressed = tmp_path / "out.zst"
        restored = tmp_path / "restored.bin"
        assert main(["compress", str(sample_file), str(compressed), "--level", "3"]) == 0
        assert main(["decompress", str(compressed), str(restored)]) == 0
        assert restored.read_bytes() == sample_file.read_bytes()
        assert "ratio" in capsys.readouterr().out

    @pytest.mark.parametrize("codec", ["zstd", "lz4", "zlib", "gzip"])
    def test_all_codecs(self, tmp_path, sample_file, codec):
        compressed = tmp_path / "out.bin"
        restored = tmp_path / "restored.bin"
        assert main(["compress", str(sample_file), str(compressed), "--codec", codec]) == 0
        assert main(["decompress", str(compressed), str(restored), "--codec", codec]) == 0
        assert restored.read_bytes() == sample_file.read_bytes()

    def test_dictionary_flow(self, tmp_path, sample_file):
        dictionary = tmp_path / "dict.bin"
        other = tmp_path / "other.bin"
        other.write_bytes(generate_records(8192, seed=6))
        assert main(
            ["train-dict", str(dictionary), str(sample_file), str(other), "--max-size", "2048"]
        ) == 0
        assert 0 < len(dictionary.read_bytes()) <= 2048
        compressed = tmp_path / "c.zst"
        restored = tmp_path / "r.bin"
        assert main(
            ["compress", str(sample_file), str(compressed), "--dictionary", str(dictionary)]
        ) == 0
        assert main(
            ["decompress", str(compressed), str(restored), "--dictionary", str(dictionary)]
        ) == 0
        assert restored.read_bytes() == sample_file.read_bytes()


class TestInspect:
    def test_inspect_frame(self, tmp_path, sample_file, capsys):
        compressed = tmp_path / "c.zst"
        assert main(["compress", str(sample_file), str(compressed)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(compressed)]) == 0
        out = capsys.readouterr().out
        assert "content size:    8192" in out
        assert "blocks:" in out


class TestBench:
    def test_bench_prints_table(self, sample_file, capsys):
        assert main(["bench", str(sample_file), "--levels", "1", "3"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out and "zstd" in out and "lz4" in out


class TestOptimize:
    def test_optimize_prints_ranking(self, sample_file, capsys):
        assert main(
            ["optimize", str(sample_file), "--levels", "1", "3", "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "best:" in out

    def test_unsatisfiable_requirements_exit_code(self, sample_file, capsys):
        code = main(
            [
                "optimize", str(sample_file),
                "--levels", "1", "--min-speed", "999999",
            ]
        )
        assert code == 1
        assert "no configuration" in capsys.readouterr().out

    def test_block_size_grid(self, sample_file, capsys):
        assert main(
            [
                "optimize", str(sample_file),
                "--codecs", "zstd", "--levels", "1",
                "--block-sizes", "4", "16",
                "--max-decode-ms", "10",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "zstd-1@4KB" in out and "zstd-1@16KB" in out


class TestFleetReport:
    def test_fleet_report(self, capsys):
        assert main(
            ["fleet-report", "--days", "2", "--samples-per-day", "20000"]
        ) == 0
        out = capsys.readouterr().out
        assert "compression share" in out
        assert "Data Warehouse" in out


class TestConsoleEntryPoint:
    def test_scripts_entry_resolves_to_cli_main(self):
        import importlib
        import pathlib

        tomllib = pytest.importorskip("tomllib")
        pyproject = pathlib.Path(__file__).resolve().parents[1] / "pyproject.toml"
        scripts = tomllib.loads(pyproject.read_text())["project"]["scripts"]
        assert scripts == {"repro": "repro.cli:main"}
        module_name, __, attr = scripts["repro"].partition(":")
        entry = getattr(importlib.import_module(module_name), attr)
        assert entry is main
        # the resolved entry behaves like a console script: bad usage
        # exits through argparse with the conventional status 2
        with pytest.raises(SystemExit) as excinfo:
            entry(["--no-such-flag"])
        assert excinfo.value.code == 2


class TestServeSim:
    def test_scorecard_and_passing_gates(self, capsys):
        assert main(
            [
                "serve-sim", "--scenario", "overload", "--seed", "7",
                "--scale", "0.1", "--max-shed-rate", "1.0",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "serving scorecard -- scenario 'overload', seed 7" in out
        assert "ladder:" in out
        assert "goodput" in out

    def test_min_served_gate_fails(self, capsys):
        assert main(
            [
                "serve-sim", "--scenario", "baseline", "--seed", "7",
                "--scale", "0.05", "--min-served", "1000000",
            ]
        ) == 1
        assert "FAIL" in capsys.readouterr().out


class TestSloCommand:
    _ARGS = ["slo", "--scenario", "overload", "--seed", "42", "--scale", "0.5"]

    def test_table_timeline_prints(self, capsys):
        assert main(self._ARGS) == 0
        out = capsys.readouterr().out
        assert "slo timeline -- scenario 'overload', seed 42" in out
        assert "shed_rate: ok -> page" in out
        assert "final states:" in out

    def test_jsonl_runs_byte_identical(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        for path in (first, second):
            assert main(
                self._ARGS + ["--format", "jsonl", "--output", str(path)]
            ) == 0
        assert first.read_bytes() == second.read_bytes()
        kinds = [
            __import__("json").loads(line)["kind"]
            for line in first.read_text().splitlines()
        ]
        assert kinds[0] == "run" and kinds[-1] == "end"

    def test_max_page_seconds_gate(self, capsys):
        assert main(self._ARGS + ["--max-page-seconds", "0"]) == 1
        assert "page-seconds exceeds" in capsys.readouterr().err
        assert main(
            ["slo", "--scenario", "baseline", "--seed", "7", "--scale",
             "0.25", "--max-page-seconds", "0"]
        ) == 0

    def test_shed_budget_override(self, capsys):
        # a huge budget keeps even overload from paging shed_rate
        assert main(
            self._ARGS + ["--shed-budget", "0.9", "--max-page-seconds", "0.5"]
        ) == 0


class TestObsWatch:
    def test_watch_replays_recorded_timeline(self, tmp_path, capsys):
        recorded = tmp_path / "timeline.jsonl"
        assert main(
            [
                "slo", "--scenario", "overload", "--seed", "42", "--scale",
                "0.5", "--format", "jsonl", "--output", str(recorded),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "watch", str(recorded)]) == 0
        out = capsys.readouterr().out
        assert "obs watch -- serving scenario 'overload', seed 42" in out
        assert "\x1b[31m" in out  # overload pages: red ANSI present
        assert "shed_rate: ok -> page" in out

    def test_no_color_strips_ansi(self, tmp_path, capsys):
        recorded = tmp_path / "timeline.jsonl"
        main(
            ["slo", "--scenario", "overload", "--seed", "42", "--scale",
             "0.25", "--format", "jsonl", "--output", str(recorded)]
        )
        capsys.readouterr()
        assert main(["obs", "watch", str(recorded), "--no-color"]) == 0
        assert "\x1b[" not in capsys.readouterr().out

    def test_garbage_input_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        assert main(["obs", "watch", str(bad)]) == 1
        assert "obs watch:" in capsys.readouterr().err

    def test_plain_obs_still_works(self, capsys):
        assert main(["obs", "--workload", "rpc", "--format", "table"]) == 0
        assert "metric" in capsys.readouterr().out
