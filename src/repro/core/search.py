"""Search strategies over the candidate grid.

"With more compression parameters ... one might need to adopt efficient
search methods based on random sampling, gradient-descent, or genetic
algorithm, but the exhaustive search is sufficient for our study"
(Section V-A). Exhaustive is the default; random sampling and a small
evolutionary search are provided for larger spaces and for the auto-tuner
example (Section VI-C).
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, TYPE_CHECKING

from repro.core.config import CompressionConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.optimizer import RankedConfig

Evaluator = Callable[[CompressionConfig], "RankedConfig"]


class SearchStrategy:
    """Chooses which candidates to evaluate."""

    def run(
        self, candidates: Sequence[CompressionConfig], evaluate: Evaluator
    ) -> List["RankedConfig"]:
        raise NotImplementedError


class ExhaustiveSearch(SearchStrategy):
    """Evaluate every candidate (the paper's choice)."""

    def run(
        self, candidates: Sequence[CompressionConfig], evaluate: Evaluator
    ) -> List["RankedConfig"]:
        return [evaluate(config) for config in candidates]


class RandomSearch(SearchStrategy):
    """Evaluate a random subset of the grid."""

    def __init__(self, budget: int, seed: int = 0) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.budget = budget
        self.seed = seed

    def run(
        self, candidates: Sequence[CompressionConfig], evaluate: Evaluator
    ) -> List["RankedConfig"]:
        rng = random.Random(self.seed)
        pool = list(candidates)
        if len(pool) > self.budget:
            pool = rng.sample(pool, self.budget)
        return [evaluate(config) for config in pool]


class EvolutionarySearch(SearchStrategy):
    """Small genetic search: tournament selection + neighbor mutation.

    Mutation moves a candidate to a grid neighbor (adjacent level or block
    size within the same algorithm, or the same level in another algorithm),
    which suits the locally monotone structure of compression trade-off
    curves.
    """

    def __init__(
        self,
        generations: int = 4,
        population: int = 8,
        seed: int = 0,
    ) -> None:
        self.generations = generations
        self.population = population
        self.seed = seed

    def _neighbors(
        self, config: CompressionConfig, grid: Sequence[CompressionConfig]
    ) -> List[CompressionConfig]:
        near = []
        for other in grid:
            if other == config:
                continue
            same_algo = other.algorithm == config.algorithm
            level_step = abs(other.level - config.level) <= 2
            same_block = other.block_size == config.block_size
            if (same_algo and level_step and same_block) or (
                not same_algo and other.level == config.level and same_block
            ):
                near.append(other)
        return near

    def run(
        self, candidates: Sequence[CompressionConfig], evaluate: Evaluator
    ) -> List["RankedConfig"]:
        rng = random.Random(self.seed)
        grid = list(candidates)
        population = grid if len(grid) <= self.population else rng.sample(
            grid, self.population
        )
        seen = {}
        for config in population:
            seen[config] = evaluate(config)
        for __ in range(self.generations):
            scored = sorted(seen.values(), key=lambda r: r.total_cost)
            parents = [r.config for r in scored[: max(2, self.population // 2)]]
            children = []
            for parent in parents:
                neighbors = [
                    c for c in self._neighbors(parent, grid) if c not in seen
                ]
                if neighbors:
                    children.append(rng.choice(neighbors))
            if not children:
                break
            for child in children:
                seen[child] = evaluate(child)
        return list(seen.values())
