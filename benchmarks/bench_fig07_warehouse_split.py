"""Fig. 7: warehouse workflows' compression/decompression split plus the
match-finding vs entropy-encoding attribution inside compression.

Paper shape: DW2 splits ~22% compression / ~8% decompression; match
finding dominates DW1 (level 7, up to ~80%) but only ~30% for DW4
(level 1).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.corpus import generate_table
from repro.services import IngestionJob, MLDataJob, ShuffleJob, SparkJob


@pytest.fixture(scope="module")
def reports():
    table = generate_table(2500, seed=50)
    ingest = IngestionJob().run(table)
    return {
        "DW1": ingest.report,
        "DW2": ShuffleJob().run(ingest.payload).report,
        "DW3": SparkJob().run(ingest.payload).report,
        "DW4": MLDataJob().run(ingest.payload).report,
    }


def test_fig07_warehouse_split(benchmark, reports, figure_output):
    rows = []
    for name, report in reports.items():
        rows.append(
            [
                name,
                f"{report.compress_share * 100:.1f}%",
                f"{report.decompress_share * 100:.1f}%",
                f"{report.match_finding_share_of_compression * 100:.0f}%",
                f"{(1 - report.match_finding_share_of_compression) * 100:.0f}%",
            ]
        )
    figure_output(
        "fig07_warehouse_split",
        format_table(
            ["workflow", "comp", "decomp", "match-find %comp", "entropy %comp"],
            rows,
            title="Fig. 7: warehouse compression split and stage attribution",
        ),
    )
    dw1, dw2, dw4 = reports["DW1"], reports["DW2"], reports["DW4"]
    # DW2: compression-heavy split (paper: 22% vs 8%).
    assert dw2.compress_share > 2 * dw2.decompress_share
    # Stage attribution: level 7 (DW1) is match-finding dominated, level 1
    # (DW4) is not.
    assert dw1.match_finding_share_of_compression > 0.5
    assert dw4.match_finding_share_of_compression < 0.5

    table = generate_table(400, seed=51)
    job = IngestionJob()
    benchmark(lambda: job.run(table))
