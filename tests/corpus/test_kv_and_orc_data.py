"""KV record and columnar table generator tests."""

import numpy as np
import pytest

from repro.corpus import generate_kv_records, generate_table
from repro.corpus.orcdata import ColumnSpec, DEFAULT_SCHEMA


class TestKVRecords:
    def test_count(self):
        assert len(generate_kv_records(500, seed=1)) == 500

    def test_sorted_by_key(self):
        records = generate_kv_records(500, seed=1)
        keys = [k for k, __ in records]
        assert keys == sorted(keys)

    def test_keys_share_prefixes(self):
        records = generate_kv_records(100, seed=2)
        assert all(k.startswith(b"svc7/shard") for k, __ in records)

    def test_values_nonempty_and_bounded(self):
        records = generate_kv_records(200, seed=3)
        assert all(0 < len(v) < 500 for __, v in records)

    def test_deterministic(self):
        assert generate_kv_records(50, seed=4) == generate_kv_records(50, seed=4)


class TestColumnarTables:
    def test_default_schema_columns(self):
        table = generate_table(100, seed=1)
        assert set(table) == {spec.name for spec in DEFAULT_SCHEMA}

    def test_row_counts_align(self):
        table = generate_table(250, seed=1)
        assert all(len(v) == 250 for v in table.values())

    def test_id_column_monotone(self):
        table = generate_table(500, seed=2)
        ids = np.asarray(table["event_id"])
        assert np.all(np.diff(ids) > 0)

    def test_string_column_low_cardinality(self):
        table = generate_table(1000, seed=3)
        assert len(set(table["event_type"])) <= 12

    def test_bool_column(self):
        table = generate_table(300, seed=4)
        assert table["is_organic"].dtype == np.bool_

    def test_custom_schema(self):
        schema = [ColumnSpec("x", "int_sequence"), ColumnSpec("y", "float")]
        table = generate_table(50, seed=5, schema=schema)
        assert set(table) == {"x", "y"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            generate_table(10, schema=[ColumnSpec("bad", "complex128")])
