"""Resilience threaded through the services: each fault class recovers.

These are the integration contracts the chaos scorecard certifies in
bulk; here each one is pinned individually with scripted faults.
"""

import pytest

from repro.codecs import get_codec
from repro.codecs.base import CodecError, CorruptDataError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, FaultyCodec
from repro.faults.plan import WireEffects
from repro.resilience import CircuitBreaker, RetryPolicy, SimClock
from repro.services.cache.client import CacheClient
from repro.services.cache.server import CacheServer
from repro.services.farmemory import FarMemoryPool, PageLostError
from repro.services.kvstore.db import KVStore
from repro.services.managed import DictionaryRetiredError, ManagedCompression
from repro.services.rpc import (
    Channel,
    RpcExhaustedError,
    RpcTimeoutError,
)


class _ScriptedWire:
    """Injector stand-in whose per-attempt wire effects follow a script."""

    def __init__(self, effects):
        self.effects = list(effects)

    def on_wire(self, site, payload):
        if self.effects:
            return self.effects.pop(0)
        return WireEffects(payload, False, 0.0, ())


def _drop(payload=b""):
    return WireEffects(payload, True, 0.0, ("drop",))


def _pass(payload):
    return WireEffects(payload, False, 0.0, ())


class TestRpcRetry:
    def _channel(self, retry, timeout=None):
        return Channel(
            codec=get_codec("zstd"),
            timeout_seconds=timeout,
            retry=retry,
        )

    def test_drop_then_success_recovers(self):
        channel = self._channel(RetryPolicy(max_attempts=3, jitter=0.0))
        channel.injector = _ScriptedWire([_drop()])
        payload = b"message body " * 40
        received, elapsed = channel.send(payload)
        assert received == payload
        assert channel.stats.retries == 1
        assert channel.stats.drops == 1
        assert channel.stats.recovered_messages == 1
        assert channel.stats.failed_messages == 0
        assert channel.stats.backoff_seconds > 0
        assert elapsed > channel.stats.backoff_seconds  # backoff included

    def test_budget_exhaustion_raises_typed_error(self):
        channel = self._channel(RetryPolicy(max_attempts=2, jitter=0.0))
        channel.injector = _ScriptedWire([_drop(), _drop()])
        with pytest.raises(RpcExhaustedError):
            channel.send(b"doomed " * 20)
        assert channel.stats.failed_messages == 1
        assert channel.stats.recovered_messages == 0

    def test_no_retry_policy_raises_original_error(self):
        channel = self._channel(retry=None)
        channel.injector = _ScriptedWire([_drop()])
        from repro.services.rpc import ChannelDropError

        with pytest.raises(ChannelDropError):
            channel.send(b"one shot " * 20)

    def test_timeout_is_retryable(self):
        channel = self._channel(
            RetryPolicy(max_attempts=2, jitter=0.0), timeout=0.01
        )
        channel.injector = _ScriptedWire(
            [  # 20 ms latency spike blows the 10 ms deadline once
                WireEffects(b"", False, 0.02, ("latency",)),
            ]
        )
        # the spike consumed attempt 1; attempt 2 sails through
        payload = b"deadline bound " * 20
        received, __ = channel.send(payload)
        assert received == payload
        assert channel.stats.timeouts == 1
        assert channel.stats.recovered_messages == 1

    def test_timeout_without_injector(self):
        channel = Channel(
            codec=get_codec("zstd"),
            bandwidth_bytes_per_second=1.0,  # absurdly slow wire
            timeout_seconds=0.001,
        )
        with pytest.raises(RpcTimeoutError):
            channel.send(b"too big for the deadline " * 10)

    def test_corrupt_payload_is_retryable(self):
        channel = self._channel(RetryPolicy(max_attempts=3, jitter=0.0))

        class _CorruptOnce(_ScriptedWire):
            def on_wire(self, site, payload):
                if self.effects:
                    self.effects.pop()
                    damaged = bytes(b ^ 0xFF for b in payload[:8]) + payload[8:]
                    return WireEffects(damaged, False, 0.0, ("bit_flip",))
                return WireEffects(payload, False, 0.0, ())

        channel.injector = _CorruptOnce([1])
        payload = b"verify me " * 40
        received, __ = channel.send(payload)
        assert received == payload
        assert channel.stats.corrupt_payloads == 1
        assert channel.stats.recovered_messages == 1


class TestCacheRecovery:
    def test_corrupt_entry_quarantined_then_refilled(self):
        server = CacheServer(codec=get_codec("zstd"), min_compress_size=16)
        client = CacheClient(server)
        value = b"structured cache item " * 20
        server.set(b"k", "t", value)
        __, compressed, stored = server.stored_entry(b"k")
        assert compressed
        server.replace_stored(b"k", bytes(b ^ 0xFF for b in stored[:6]) + stored[6:])
        assert client.get(b"k") is None
        assert client.stats.decode_failures == 1
        assert server.stats.corrupt_evictions == 1
        assert b"k" not in server  # honest miss for every later reader
        server.set(b"k", "t", value)  # the re-fetch-and-refill recovery
        assert client.get(b"k") == value

    def test_breaker_trips_to_raw_passthrough(self):
        clock = SimClock()
        breaker = CircuitBreaker(
            "cache", failure_threshold=2, cooldown_seconds=1e9, clock=clock
        )
        codec = FaultyCodec(
            get_codec("zstd"),
            FaultInjector(
                FaultPlan("p", (FaultSpec("codec", "fail", 1.0),)), seed=0
            ),
        )
        server = CacheServer(codec=codec, min_compress_size=16, breaker=breaker)
        client = CacheClient(server)
        for i in range(5):
            server.set(b"k%d" % i, "t", b"value %d " % i * 16)
        # first two sets fail the codec and trip the breaker; the rest
        # go straight to raw passthrough without touching the codec
        assert server.stats.compress_failures == 2
        assert server.stats.raw_fallbacks == 3
        assert breaker.state == "open"
        # raw entries still serve correctly
        for i in range(5):
            assert client.get(b"k%d" % i) == b"value %d " % i * 16

    def test_transient_decode_failure_degrades_to_miss_without_eviction(self):
        # fail rate 1.0 on decompress: both the first try and the one
        # retry raise the *transient* InjectedCodecError (not corruption)
        codec = FaultyCodec(
            get_codec("zstd"),
            FaultInjector(
                FaultPlan(
                    "p", (FaultSpec("codec.zstd.decompress", "fail", 1.0),)
                ),
                seed=0,
            ),
        )
        server = CacheServer(codec=codec, min_compress_size=16)
        client = CacheClient(server)
        value = b"still fine at rest " * 16
        server.set(b"k", "t", value)
        assert client.get(b"k") is None
        assert client.stats.decode_failures == 1
        assert b"k" in server  # NOT evicted: the bytes may be fine


class TestKvstoreRecovery:
    def test_older_level_serves_after_newest_block_rots(self):
        store = KVStore(
            codec=get_codec("zstd"), block_size=512, memtable_bytes=1 << 16
        )
        value = b"durable row " * 10
        store.put(b"key", value)
        store.flush()  # older table holding the key
        store.put(b"key", value)
        store.flush()  # newest table holding the same key
        assert store.sst_count == 2
        newest = store.levels[0][0]
        for i in range(newest.block_count):
            block = newest.block_bytes(i)
            newest.replace_block(i, bytes(b ^ 0xFF for b in block[:4]) + block[4:])
        assert store.get(b"key") == value  # fell through to the older level
        assert store.quarantined_blocks >= 1

    def test_all_copies_rotted_reports_missing_not_crash(self):
        store = KVStore(
            codec=get_codec("zstd"), block_size=512, memtable_bytes=1 << 16
        )
        store.put(b"key", b"value " * 10)
        store.flush()
        table = store.levels[0][0]
        for i in range(table.block_count):
            block = table.block_bytes(i)
            table.replace_block(i, bytes(b ^ 0xFF for b in block[:4]) + block[4:])
        assert store.get(b"key") is None
        # re-put is the recovery
        store.put(b"key", b"value " * 10)
        store.flush()
        assert store.get(b"key") == b"value " * 10

    def test_verify_blocks_quarantines_at_load(self):
        from repro.services.kvstore.sst import SSTable

        entries = [(b"k%03d" % i, b"v %03d " % i * 8) for i in range(100)]
        table = SSTable.build(entries, codec=get_codec("zstd"), block_size=512)
        block = table.block_bytes(3)
        table.replace_block(3, bytes(b ^ 0xFF for b in block[:4]) + block[4:])
        loaded = SSTable.from_bytes(table.to_bytes(), verify_blocks=True)
        assert loaded.quarantined_count >= 1
        assert any(
            "load-time scrub" in q.reason for q in loaded.stats.quarantined
        )

    def test_compaction_survives_quarantined_blocks(self):
        store = KVStore(
            codec=get_codec("zstd"),
            block_size=256,
            memtable_bytes=512,
            level0_table_limit=2,
        )
        for i in range(40):
            store.put(b"key-%03d" % i, b"value %03d " % i * 8)
        store.flush()
        table = store.levels[0][0]
        block = table.block_bytes(0)
        table.replace_block(0, bytes(b ^ 0xFF for b in block[:4]) + block[4:])
        # force compaction across the damaged table: must not raise
        for i in range(40, 120):
            store.put(b"key-%03d" % i, b"value %03d " % i * 8)
        store.flush()
        assert store.get(b"key-119") == b"value 119 " * 8


class TestFarMemoryRecovery:
    def _pool(self, specs, threshold=3):
        clock = SimClock()
        breaker = CircuitBreaker(
            "farmem", failure_threshold=threshold,
            cooldown_seconds=2.0, clock=clock,
        )
        codec = FaultyCodec(
            get_codec("zstd"),
            FaultInjector(FaultPlan("p", tuple(specs)), seed=0),
            clock=clock,
        )
        return FarMemoryPool(
            codec=codec, cold_age_ticks=1, breaker=breaker, tick_seconds=1.0
        )

    def test_page_lost_then_rebuilt(self):
        pool = self._pool([])
        data = b"page contents " * 200  # < PAGE_SIZE, padded on write
        pool.write(0, data)
        pool.tick()
        pool.tick()  # page now compressed
        assert pool.stats.pages_compressed == 1
        # from here on, every decompress fails twice -> page lost
        pool.codec.injector.plan = FaultPlan(
            "p", (FaultSpec("codec.zstd.decompress", "fail", 1.0),)
        )
        with pytest.raises(PageLostError) as excinfo:
            pool.read(0)
        assert excinfo.value.page_number == 0
        assert pool.stats.pages_lost == 1
        assert 0 not in pool._pages
        # recovery: rebuild from the source of truth
        pool.codec.injector.plan = FaultPlan("p", ())
        pool.write(0, data)
        assert pool.read(0)[: len(data)] == data

    def test_breaker_skips_reclaim_compression_when_open(self):
        pool = self._pool(
            [FaultSpec("codec.zstd.compress", "fail", 1.0)], threshold=2
        )
        for i in range(4):
            pool.write(i, b"cold page %d " % i * 100)
        pool.tick()
        pool.tick()  # failures trip the breaker
        assert pool.breaker.state == "open"
        pool.tick()  # now skipped, not attempted
        assert pool.stats.compression_skips > 0
        assert pool.stats.pages_compressed == 0
        # pages stay resident and readable
        for i in range(4):
            assert pool.read(i)[:10] == (b"cold page %d " % i * 100)[:10]


class TestManagedRecovery:
    def _churn(self, service, use_case, blobs_wanted=30):
        blobs = []
        for i in range(blobs_wanted):
            data = b"log record %03d shared shape " % i * 6
            blobs.append((data, service.compress(use_case, data)))
        return blobs

    def test_retired_version_raises_typed_error(self):
        service = ManagedCompression(codec=get_codec("zstd"), sample_every=1)
        service.register_use_case(
            "logs", retrain_interval=8, max_versions=1, dictionary_size=2048
        )
        blobs = self._churn(service, "logs")
        retired = [
            (data, blob)
            for data, blob in blobs
            if blob.dictionary_version
            and blob.dictionary_version not in service.available_versions("logs")
        ]
        assert retired  # max_versions=1 with several retrains must retire some
        with pytest.raises(DictionaryRetiredError) as excinfo:
            service.decompress(retired[0][1])
        error = excinfo.value
        assert error.use_case == "logs"
        assert error.version == retired[0][1].dictionary_version
        assert error.available == service.available_versions("logs")
        assert isinstance(error, CodecError)

    def test_retired_handler_recovers(self):
        current = {}

        def handler(error):
            # the caller knows which blob it is decoding; it re-fetches
            # that blob's plaintext from its own source of truth
            return current["data"]

        service = ManagedCompression(
            codec=get_codec("zstd"), sample_every=1, retired_handler=handler
        )
        service.register_use_case(
            "logs", retrain_interval=8, max_versions=1, dictionary_size=2048
        )
        blobs = self._churn(service, "logs")
        stats = service.stats("logs")
        for data, blob in blobs:
            current["data"] = data
            assert service.decompress(blob) == data  # never raises
        assert stats.retired_blobs > 0
        assert stats.recoveries == stats.retired_blobs

    def test_drop_dictionary_forces_the_path(self):
        service = ManagedCompression(codec=get_codec("zstd"), sample_every=1)
        service.register_use_case(
            "logs", retrain_interval=8, max_versions=4, dictionary_size=2048
        )
        blobs = self._churn(service, "logs", blobs_wanted=12)
        version = service.current_version("logs")
        assert version >= 1
        dict_blobs = [b for __, b in blobs if b.dictionary_version == version]
        assert dict_blobs
        assert service.drop_dictionary("logs", version)
        assert not service.drop_dictionary("logs", version)  # already gone
        with pytest.raises(DictionaryRetiredError):
            service.decompress(dict_blobs[0])
        # compression degrades to dictionary-less and stays decodable
        blob = service.compress("logs", b"after the loss " * 6)
        assert blob.dictionary_version == 0
        assert service.decompress(blob) == b"after the loss " * 6
