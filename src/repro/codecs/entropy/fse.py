"""Finite State Entropy (tANS) coding.

This is the entropy scheme Zstandard uses for its sequence codes. A table of
``2**table_log`` states is partitioned among symbols in proportion to their
normalized frequencies; encoding walks the state machine backwards emitting a
variable number of bits per symbol, decoding walks it forwards.

The implementation follows the textbook tANS construction: the decoding table
is built first (symbol spread + per-state transition), and the encoder is its
exact inverse, so round-trip correctness holds by construction.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.codecs.entropy.bitio import BitReader, BitWriter


def normalize_counts(counts: Sequence[int], table_log: int) -> List[int]:
    """Scale a histogram so it sums to ``2**table_log``.

    Every symbol with a non-zero raw count keeps a normalized count of at
    least 1 (it must own at least one state). Uses largest-remainder
    apportionment, stealing from the most frequent symbols when low-frequency
    symbols get bumped up to 1.
    """
    table_size = 1 << table_log
    total = sum(counts)
    if total <= 0:
        raise ValueError("histogram is empty")
    present = sum(1 for c in counts if c > 0)
    if present > table_size:
        raise ValueError(
            f"{present} symbols cannot share {table_size} states"
        )

    normalized = [0] * len(counts)
    remainders: List[Tuple[float, int]] = []
    assigned = 0
    for symbol, count in enumerate(counts):
        if count <= 0:
            continue
        exact = count * table_size / total
        floor_value = max(1, int(exact))
        normalized[symbol] = floor_value
        assigned += floor_value
        remainders.append((exact - floor_value, symbol))

    # Distribute any shortfall to the largest remainders; recover any excess
    # from the symbols holding the most states.
    remainders.sort(reverse=True)
    index = 0
    while assigned < table_size:
        __, symbol = remainders[index % len(remainders)]
        normalized[symbol] += 1
        assigned += 1
        index += 1
    while assigned > table_size:
        richest = max(
            (s for s, n in enumerate(normalized) if n > 1),
            key=lambda s: normalized[s],
        )
        normalized[richest] -= 1
        assigned -= 1
    return normalized


def _spread_symbols(normalized: Sequence[int], table_log: int) -> List[int]:
    """Scatter symbols across the state table (Zstandard's spread step)."""
    table_size = 1 << table_log
    mask = table_size - 1
    step = (table_size >> 1) + (table_size >> 3) + 3
    spread = [-1] * table_size
    position = 0
    for symbol, count in enumerate(normalized):
        for _ in range(count):
            spread[position] = symbol
            position = (position + step) & mask
    if any(slot < 0 for slot in spread):
        raise AssertionError("symbol spread left unassigned states")
    return spread


class _DecodeEntry:
    __slots__ = ("symbol", "num_bits", "new_state_base")

    def __init__(self, symbol: int, num_bits: int, new_state_base: int) -> None:
        self.symbol = symbol
        self.num_bits = num_bits
        self.new_state_base = new_state_base


def _build_decode_table(
    normalized: Sequence[int], table_log: int
) -> List[_DecodeEntry]:
    table_size = 1 << table_log
    spread = _spread_symbols(normalized, table_log)
    symbol_next = list(normalized)
    table: List[_DecodeEntry] = [None] * table_size  # type: ignore[list-item]
    for state_index in range(table_size):
        symbol = spread[state_index]
        x = symbol_next[symbol]
        symbol_next[symbol] += 1
        num_bits = table_log - (x.bit_length() - 1)
        new_state_base = (x << num_bits) - table_size
        table[state_index] = _DecodeEntry(symbol, num_bits, new_state_base)
    return table


class FSEEncoder:
    """tANS encoder for one normalized symbol distribution."""

    def __init__(self, normalized: Sequence[int], table_log: int) -> None:
        if sum(normalized) != (1 << table_log):
            raise ValueError("normalized counts must sum to the table size")
        self.table_log = table_log
        self.normalized = list(normalized)
        table_size = 1 << table_log
        spread = _spread_symbols(normalized, table_log)
        # state_lists[s][j] = table index of the j-th state owned by symbol s
        # (scanned in increasing index order, matching the decoder's counter).
        self._state_lists: List[List[int]] = [[] for _ in normalized]
        for index in range(table_size):
            self._state_lists[spread[index]].append(index)

    def encode(self, symbols: Sequence[int], writer: BitWriter) -> int:
        """Encode ``symbols`` so a forward-reading decoder recovers them.

        Returns the number of payload bits written (including the initial
        state). The encoder walks the sequence backwards, as tANS requires.
        """
        table_size = 1 << self.table_log
        state = table_size  # full state in [table_size, 2*table_size)
        emitted: List[Tuple[int, int]] = []
        for symbol in reversed(symbols):
            occupancy = self.normalized[symbol]
            if occupancy == 0:
                raise ValueError(f"symbol {symbol} has zero probability")
            quotient = state // occupancy
            num_bits = quotient.bit_length() - 1
            emitted.append((state & ((1 << num_bits) - 1), num_bits))
            x = state >> num_bits  # in [occupancy, 2*occupancy)
            table_index = self._state_lists[symbol][x - occupancy]
            state = table_size + table_index
        start_bits = writer.bit_length
        writer.write(state - table_size, self.table_log)
        for value, num_bits in reversed(emitted):
            writer.write(value, num_bits)
        return writer.bit_length - start_bits

    def cost_in_bits(self, symbols: Sequence[int]) -> int:
        """Exact coded size (in bits) without producing output."""
        table_size = 1 << self.table_log
        state = table_size
        total = self.table_log
        for symbol in reversed(symbols):
            occupancy = self.normalized[symbol]
            quotient = state // occupancy
            num_bits = quotient.bit_length() - 1
            total += num_bits
            x = state >> num_bits
            state = table_size + self._state_lists[symbol][x - occupancy]
        return total


class FSEDecoder:
    """tANS decoder matching :class:`FSEEncoder`."""

    def __init__(self, normalized: Sequence[int], table_log: int) -> None:
        if sum(normalized) != (1 << table_log):
            raise ValueError("normalized counts must sum to the table size")
        self.table_log = table_log
        self._table = _build_decode_table(normalized, table_log)
        self._state = 0

    def begin(self, reader: BitReader) -> None:
        """Read the initial state from the stream."""
        self._state = reader.read(self.table_log)

    def decode_symbol(self, reader: BitReader) -> int:
        """Decode one symbol and advance the state machine."""
        entry = self._table[self._state]
        bits = reader.read(entry.num_bits) if entry.num_bits else 0
        self._state = entry.new_state_base + bits
        return entry.symbol

    def peek_symbol(self) -> int:
        """Return the symbol at the current state without consuming bits."""
        return self._table[self._state].symbol

    def decode(self, count: int, reader: BitReader) -> List[int]:
        """Decode ``count`` symbols (the stream must be positioned at init)."""
        self.begin(reader)
        return [self.decode_symbol(reader) for _ in range(count)]
