"""Rule family D: the byte-identical-scorecard contract.

Every headline artifact of this repo -- chaos scorecards, serve-sim and
cluster-sim reports, SLO timelines, the committed benchmark trajectory
-- is promised to be a pure function of (seed, scenario, scale). These
rules mechanically enforce the three ways that promise leaks in Python:

- **D001** wall-clock reads. ``time.time()``/``monotonic()``/
  ``perf_counter()`` and ``datetime.now()`` change between runs by
  definition. Simulated paths take an injected clock
  (:class:`repro.resilience.clock.SimClock`); genuinely-wall telemetry
  paths (span timing, measured sweeps) carry a justified suppression.
- **D002** salted or unseeded randomness. The builtin ``hash()`` is
  salted per process (``PYTHONHASHSEED``), the module-level ``random.*``
  functions share hidden global state, ``random.Random()`` and
  ``np.random.default_rng()`` without a seed read the OS entropy pool,
  and ``os.urandom``/``secrets``/``uuid4`` are nondeterministic by
  design. Use :func:`repro.cluster.ring.stable_hash` and explicitly
  seeded generators.
- **D003** nondeterministic iteration feeding output. Set iteration
  order is hash-salted; directory listings are filesystem-order. Both
  must pass through ``sorted()`` before they can reach anything
  serialized. (Dict iteration is insertion-ordered since 3.7 and is
  deliberately *not* flagged.)
- **D004** non-canonical JSON. ``json.dumps`` without
  ``sort_keys=True`` spells the same data differently depending on
  construction order; every export path must be canonical (see
  :func:`repro.obs.export.json_line`).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.finding import Finding
from repro.lint.rules import Rule, register

#: the one module allowed to read wall clocks without a suppression:
#: it exists to *inject* time everywhere else
_CLOCK_MODULES = ("repro/resilience/clock.py",)

_TIME_FUNCS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "localtime",
    "gmtime",
}
_DATETIME_FUNCS = {"now", "utcnow", "today"}

_RANDOM_MODULE_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate", "randbytes", "getrandbits", "seed",
}
_NP_RANDOM_SEEDED_OK = {"default_rng", "Generator", "RandomState", "SeedSequence"}


def _call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call target, e.g. ``time.monotonic`` or ``hash``."""
    parts = []
    target = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
        return ".".join(reversed(parts))
    return None


def _wrapped_in_sorted(ctx, node: ast.AST) -> bool:
    """True when ``node`` is directly an argument of ``sorted()``/``list()+sort``-style normalization."""
    link = ctx.parent(node)
    if link is None:
        return False
    parent, __ = link
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in ("sorted", "min", "max", "sum", "len", "set", "frozenset")
    )


@register
class WallClockRule(Rule):
    id = "D001"
    title = "wall-clock read outside clock-injection modules"
    rationale = (
        "Wall time differs between runs by definition; simulated paths must "
        "take an injected SimClock, and telemetry-only wall reads must carry "
        "a justified suppression so the exception is visible in the diff."
    )

    def is_exempt(self, ctx) -> bool:
        return any(ctx.path.endswith(mod) for mod in _CLOCK_MODULES)

    def check(self, ctx) -> Iterator[Finding]:
        # names imported straight off the time module, e.g.
        # ``from time import perf_counter``
        bare_time_names = {
            local: original
            for local, (module, original) in ctx.from_import_origins.items()
            if module == "time" and original in _TIME_FUNCS
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            flagged = None
            if name in bare_time_names:
                flagged = f"time.{bare_time_names[name]}()"
            elif "." in name:
                head, __, tail = name.rpartition(".")
                if head == "time" and tail in _TIME_FUNCS:
                    flagged = f"{name}()"
                elif tail in _DATETIME_FUNCS and (
                    head in ("datetime", "date")
                    or head.endswith(".datetime")
                    or head.endswith(".date")
                ):
                    flagged = f"{name}()"
            if flagged:
                yield self.finding(
                    ctx,
                    node,
                    f"{flagged} reads the wall clock; inject a clock "
                    "(resilience.clock.SimClock) or suppress with "
                    "'# repro: lint-ok[D001] -- <why this is telemetry-only>'",
                )


@register
class SaltedRandomnessRule(Rule):
    id = "D002"
    title = "builtin-salted or unseeded randomness"
    rationale = (
        "builtin hash() is salted per process (PYTHONHASHSEED); module-level "
        "random.* uses hidden shared state; Random()/default_rng() without a "
        "seed read OS entropy. All of them move scorecards between runs. Use "
        "cluster.ring.stable_hash and explicitly seeded generators."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            message = None
            if name == "hash":
                message = (
                    "builtin hash() is salted per process; use "
                    "repro.cluster.ring.stable_hash (blake2b) instead"
                )
            elif name.startswith("random."):
                tail = name.split(".", 1)[1]
                if tail in _RANDOM_MODULE_FUNCS:
                    message = (
                        f"{name}() uses the hidden module-global RNG; "
                        "construct random.Random(seed) explicitly"
                    )
                elif tail == "Random" and not node.args and not node.keywords:
                    message = (
                        "random.Random() without a seed reads OS entropy; "
                        "pass an explicit (string) seed"
                    )
                elif tail == "SystemRandom":
                    message = "random.SystemRandom is nondeterministic by design"
            elif ".random." in name or name.startswith("numpy.random"):
                head, __, tail = name.rpartition(".")
                if head in ("np.random", "numpy.random"):
                    if tail in _NP_RANDOM_SEEDED_OK:
                        if not node.args and not node.keywords:
                            message = (
                                f"{name}() without a seed reads OS entropy; "
                                "pass an explicit seed"
                            )
                    else:
                        message = (
                            f"{name}() drives the legacy numpy global RNG; "
                            "use np.random.default_rng(seed)"
                        )
            elif name == "os.urandom" or name.startswith("secrets."):
                message = f"{name}() is OS entropy; seeded paths cannot use it"
            elif name in ("uuid.uuid1", "uuid.uuid4"):
                message = f"{name}() is nondeterministic; derive ids from seeds"
            if message:
                yield self.finding(ctx, node, message)


@register
class UnorderedIterationRule(Rule):
    id = "D003"
    title = "nondeterministic iteration order feeding output"
    rationale = (
        "Set iteration order is hash-salted and directory listings are "
        "filesystem-order; both must pass through sorted() before anything "
        "derived from them is serialized. Dict iteration is insertion-ordered "
        "(3.7+) and not flagged."
    )

    _LISTING_CALLS = {
        "os.listdir": "os.listdir",
        "os.scandir": "os.scandir",
        "glob.glob": "glob.glob",
        "glob.iglob": "glob.iglob",
    }

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in self._LISTING_CALLS and not _wrapped_in_sorted(ctx, node):
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() returns filesystem order; wrap in sorted()",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("iterdir", "glob", "rglob")
                    and not _wrapped_in_sorted(ctx, node)
                    and self._is_iterated(ctx, node)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f".{node.func.attr}() yields filesystem order; "
                        "wrap in sorted()",
                    )
            iterable = self._set_iteration(node)
            if iterable is not None:
                yield self.finding(
                    ctx,
                    iterable,
                    "iterating a set is hash-order; wrap in sorted()",
                )

    @staticmethod
    def _is_set(node: ast.AST) -> bool:
        return isinstance(node, (ast.Set, ast.SetComp)) or (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _set_iteration(self, node: ast.AST) -> Optional[ast.AST]:
        """The offending set node when ``node`` iterates one directly."""
        if isinstance(node, (ast.For, ast.AsyncFor)) and self._is_set(node.iter):
            return node.iter
        if isinstance(node, ast.comprehension) and self._is_set(node.iter):
            return node.iter
        return None

    def _is_iterated(self, ctx, node: ast.AST) -> bool:
        """Path.glob()-style calls only matter when looped over directly."""
        link = ctx.parent(node)
        if link is None:
            return False
        parent, field_name = link
        return (
            isinstance(parent, (ast.For, ast.AsyncFor, ast.comprehension))
            and field_name == "iter"
        )


@register
class CanonicalJsonRule(Rule):
    id = "D004"
    title = "json.dumps without sort_keys=True"
    rationale = (
        "Two runs that computed the same data must spell it identically, or "
        "scorecard/trajectory/JSONL diffs go noisy; every json.dumps must "
        "pass sort_keys=True (see obs.export.json_line) or carry a justified "
        "suppression naming the wire format it mirrors."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in ("json.dumps", "json.dump"):
                continue
            sort_keys = None
            for keyword in node.keywords:
                if keyword.arg == "sort_keys":
                    sort_keys = keyword.value
            if (
                isinstance(sort_keys, ast.Constant)
                and sort_keys.value is True
            ):
                continue
            if sort_keys is None:
                detail = "defaults to sort_keys=False"
            elif isinstance(sort_keys, ast.Constant):
                detail = "passes sort_keys=False"
            else:
                continue  # dynamic sort_keys: assume the caller knows
            yield self.finding(
                ctx,
                node,
                f"{name}() {detail}; canonical export requires "
                "sort_keys=True (obs.export.json_line does this)",
            )
