"""ADS1 scenario: tune request compression for a latency-bound inference
service (paper Section IV-D and sensitivity study 1).

Serves batches of requests for the three ranking models at several levels,
shows the latency/network trade-off, then runs CompOpt with a compression-
speed requirement the way the paper's study 1 does.

Run:  python examples/ads_network_tuning.py
"""

from repro import (
    CompEngine,
    CompOpt,
    CostModel,
    CostParameters,
    MinCompressionSpeed,
)
from repro.core.config import config_grid
from repro.corpus import generate_ads_request
from repro.services import AdsInferenceService


def main() -> None:
    print("per-model serving behaviour (zstd level 1):")
    for model in ("A", "B", "C"):
        service = AdsInferenceService(level=1)
        stats = service.serve_batch(model, request_count=3, seed=7)
        print(
            f"  model {model}: wire ratio {stats.wire_ratio:5.2f}  "
            f"mean latency {stats.mean_latency_seconds * 1e3:6.2f} ms  "
            f"zstd cycle share {stats.zstd_cycle_share * 100:4.1f}%"
        )

    print("\nlatency vs level for model B (compression is on the request path):")
    for level in (-5, 1, 3, 6, 9):
        service = AdsInferenceService(level=level)
        stats = service.serve_batch("B", request_count=2, seed=9)
        print(
            f"  level {level:3d}: wire ratio {stats.wire_ratio:5.2f}  "
            f"mean latency {stats.mean_latency_seconds * 1e3:6.2f} ms"
        )

    print("\nCompOpt (compute + network cost, compression-speed floor):")
    engine = CompEngine([generate_ads_request("B", seed=s) for s in range(3)])
    params = CostParameters.from_price_book(storage_weight=0.0, beta=1e-7)
    optimizer = CompOpt(
        engine, CostModel(params), [MinCompressionSpeed(350e6)]
    )
    result = optimizer.optimize(
        config_grid(["zstd", "lz4", "zlib"], levels=range(1, 10))
    )
    for ranked in result.ranked[:6]:
        print(
            f"  {ranked.config.label():9s} "
            f"norm cost {ranked.total_cost / result.worst.total_cost:5.3f}"
            f"{'' if ranked.feasible else '  (too slow)'}"
        )
    print(f"  -> winner: {result.best.config.label()} (paper: zstd level 4)")


if __name__ == "__main__":
    main()
