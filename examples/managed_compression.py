"""Managed Compression (paper Section II-B): a stateless-looking API over a
stateful dictionary-management service.

Callers just compress/decompress; the service samples traffic, trains
per-use-case dictionaries, versions them, and keeps old versions alive for
previously written blobs.

Run:  python examples/managed_compression.py
"""

from repro.corpus import CACHE1_TYPES, generate_cache_items
from repro.services import ManagedCompression


def main() -> None:
    service = ManagedCompression(sample_every=1)
    # max_versions must cover the oldest blob still in flight -- the
    # version-retention decision every managed deployment makes.
    service.register_use_case(
        "feed_items", level=3, dictionary_size=8192, retrain_interval=64,
        max_versions=16,
    )

    items = [p for __, p in generate_cache_items(CACHE1_TYPES, 400, seed=13)]
    print(f"compressing {len(items)} typed items through the managed API ...")

    blobs = []
    checkpoints = {}
    for index, payload in enumerate(items):
        blob = service.compress("feed_items", payload)
        blobs.append((blob, payload))
        if index in (50, 150, 300):
            stats = service.stats("feed_items")
            checkpoints[index] = (
                service.current_version("feed_items"),
                stats.ratio,
            )

    print("\ndictionary lifecycle:")
    for index, (version, ratio) in checkpoints.items():
        print(
            f"  after {index:3d} calls: dictionary v{version}, "
            f"cumulative ratio {ratio:.2f}x"
        )
    stats = service.stats("feed_items")
    print(
        f"\nfinal: v{service.current_version('feed_items')} "
        f"({stats.retrains} retrains), overall ratio {stats.ratio:.2f}x"
    )
    print(f"available dictionary versions: {service.available_versions('feed_items')}")

    print("\nverifying every blob decompresses (old versions included) ...")
    for blob, payload in blobs:
        assert service.decompress(blob) == payload
    versions_used = sorted({blob.dictionary_version for blob, __ in blobs})
    print(f"ok -- blobs spanned dictionary versions {versions_used}")


if __name__ == "__main__":
    main()
