"""``repro.serving`` — the admission-controlled compression gateway.

The traffic plane the ROADMAP's north star calls for: concurrent
requests from many tenants flow through explicit admission control
(token bucket + adaptive concurrency), wait in bounded weighted-fair
queues with deadline drops, and — under pressure — step down a
CompOpt-ranked degradation ladder (trade ratio for latency, the
bicriteria move) *before* any load is shed. A deterministic
discrete-event simulator (``repro serve-sim``) runs gateway + seeded
open-loop workload entirely in modeled time and renders a byte-identical
scorecard per seed.
"""

from repro.serving.admission import (
    ADMIT,
    SHED,
    THROTTLE,
    AdaptiveConcurrencyLimit,
    AdmissionController,
    AdmissionVerdict,
    TokenBucket,
)
from repro.serving.degrade import (
    DegradationLadder,
    Rung,
    build_ladder,
    default_thresholds,
)
from repro.serving.gateway import (
    CompressionGateway,
    GatewayStats,
    ServedRequest,
)
from repro.serving.queue import FairQueue, QueueStats, ServingRequest
from repro.serving.simulate import (
    SCENARIOS,
    ServingReport,
    ServingScenario,
    format_scorecard,
    run_simulation,
)
from repro.serving.slos import (
    ServingSLOConfig,
    ServingTimeline,
    TimelineWindow,
    format_timeline,
    serving_slos,
    timeline_jsonl,
)
from repro.serving.workload import (
    TenantSpec,
    WorkloadGenerator,
    tenants_from_fleet,
)

__all__ = [
    "ADMIT",
    "SHED",
    "THROTTLE",
    "AdaptiveConcurrencyLimit",
    "AdmissionController",
    "AdmissionVerdict",
    "CompressionGateway",
    "DegradationLadder",
    "FairQueue",
    "GatewayStats",
    "QueueStats",
    "Rung",
    "SCENARIOS",
    "ServedRequest",
    "ServingReport",
    "ServingRequest",
    "ServingSLOConfig",
    "ServingScenario",
    "ServingTimeline",
    "TenantSpec",
    "TimelineWindow",
    "TokenBucket",
    "WorkloadGenerator",
    "build_ladder",
    "default_thresholds",
    "format_scorecard",
    "format_timeline",
    "run_simulation",
    "serving_slos",
    "tenants_from_fleet",
    "timeline_jsonl",
]
