"""Table I: the eight services characterized at service level."""

from __future__ import annotations

from repro.analysis import format_table
from repro.services.catalog import SERVICE_CATALOG


def test_table1_services(benchmark, figure_output):
    rows = [
        [
            info.name,
            info.category,
            info.description,
            info.resource_boundedness,
            info.key_takeaway,
        ]
        for info in SERVICE_CATALOG.values()
    ]
    figure_output(
        "table1_services",
        format_table(
            ["Service", "Category", "Description", "Boundedness", "Key takeaway"],
            rows,
            title="Table I: representative services",
        ),
    )
    assert len(rows) == 8

    benchmark(lambda: list(SERVICE_CATALOG.values()))
