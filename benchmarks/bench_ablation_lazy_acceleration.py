"""Ablations: lazy-evaluation depth and scan acceleration (DESIGN.md §5).

Two knobs inside the match-finding stage:

- ``lazy_steps`` (0/1/2): deferring a match to check the next positions,
  the mechanism separating zstd's greedy/lazy/lazy2 strategies;
- ``acceleration``: the miss-driven skip-step growth behind LZ4's
  acceleration factor and zstd's negative levels.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.codecs.base import StageCounters
from repro.codecs.matchfinders import (
    HashChainMatchFinder,
    MatchFinderParams,
    SingleHashMatchFinder,
)
from repro.codecs.zstd import blocks as zblocks
from repro.corpus import generate_binary, generate_records
from repro.perfmodel import DEFAULT_MACHINE


@pytest.fixture(scope="module")
def lazy_sweep():
    # Structured records: the regime where deferred matching pays off.
    data = generate_records(32768, seed=210)
    out = {}
    for lazy_steps in (0, 1, 2):
        params = MatchFinderParams(
            strategy=("greedy", "lazy", "lazy2")[lazy_steps],
            search_depth=16,
            lazy_steps=lazy_steps,
        )
        counters = StageCounters(bytes_in=len(data))
        tokens = HashChainMatchFinder().parse(data, 0, params, counters)
        payload = zblocks.encode_block(data, 0, tokens, counters)
        out[lazy_steps] = (
            len(data) / len(payload),
            DEFAULT_MACHINE.compress_speed("zstd", counters) / 1e6,
        )
    return out


@pytest.fixture(scope="module")
def acceleration_sweep():
    # Low-redundancy binary: the miss-heavy regime acceleration targets.
    data = generate_binary(32768, seed=211)
    out = {}
    for acceleration in (1, 3, 7, 11):
        params = MatchFinderParams(strategy="fast", acceleration=acceleration)
        counters = StageCounters(bytes_in=len(data))
        tokens = SingleHashMatchFinder().parse(data, 0, params, counters)
        payload = zblocks.encode_block(data, 0, tokens, counters)
        out[acceleration] = (
            len(data) / len(payload),
            DEFAULT_MACHINE.compress_speed("zstd", counters) / 1e6,
            counters.positions_scanned,
        )
    return out


def test_ablation_lazy_steps(benchmark, lazy_sweep, figure_output):
    rows = [
        [steps, f"{ratio:.3f}", f"{speed:.0f}"]
        for steps, (ratio, speed) in sorted(lazy_sweep.items())
    ]
    figure_output(
        "ablation_lazy_steps",
        format_table(
            ["lazy steps", "ratio", "modeled MB/s"],
            rows,
            title="Ablation: lazy evaluation depth (greedy/lazy/lazy2)",
        ),
    )
    # Lazy parsing buys ratio over greedy at a speed cost.
    assert lazy_sweep[2][0] >= lazy_sweep[0][0]
    assert lazy_sweep[2][1] < lazy_sweep[0][1]

    data = generate_records(8192, seed=212)
    params = MatchFinderParams(strategy="lazy", search_depth=16, lazy_steps=1)
    benchmark(lambda: HashChainMatchFinder().parse(data, 0, params))


def test_ablation_acceleration(benchmark, acceleration_sweep, figure_output):
    rows = [
        [acceleration, f"{ratio:.3f}", f"{speed:.0f}", scanned]
        for acceleration, (ratio, speed, scanned) in sorted(
            acceleration_sweep.items()
        )
    ]
    figure_output(
        "ablation_acceleration",
        format_table(
            ["acceleration", "ratio", "modeled MB/s", "positions scanned"],
            rows,
            title="Ablation: scan acceleration (zstd negative levels / LZ4)",
        ),
    )
    # Acceleration strictly reduces work and costs ratio at the extremes.
    scanned = [acceleration_sweep[a][2] for a in sorted(acceleration_sweep)]
    assert scanned == sorted(scanned, reverse=True)
    assert acceleration_sweep[11][0] <= acceleration_sweep[1][0]
    assert acceleration_sweep[11][1] > acceleration_sweep[1][1]

    data = generate_binary(8192, seed=213)
    params = MatchFinderParams(strategy="fast", acceleration=7)
    benchmark(lambda: SingleHashMatchFinder().parse(data, 0, params))
