"""GraphCompressor behaviour: round-trips, counters, registry, bomb guard."""

import pytest

from repro.codecs import get_codec
from repro.codecs.base import CorruptDataError, OutputLimitExceeded
from repro.graphs import (
    GraphCompressor,
    TRAINED_GRAPHS,
    available_graphs,
    get_graph,
    register_graph,
    unregister_graph,
)
from repro.graphs.samples import category_sample
from repro.graphs.trained import TRAINED_CATEGORIES


@pytest.mark.parametrize("category", TRAINED_CATEGORIES)
def test_trained_graph_roundtrips_its_category(category):
    data = category_sample(category, size=65536, seed=3)
    codec = GraphCompressor(category, TRAINED_GRAPHS[category])
    result = codec.compress(data, 1)
    assert result.ratio > 1.0, f"{category} graph failed to compress at all"
    back = codec.decompress(result.data)
    assert back.data == data


@pytest.mark.parametrize("category", TRAINED_CATEGORIES)
def test_trained_graph_roundtrips_foreign_data(category):
    """Graphs are total: any bytes round-trip, even the wrong category."""
    other = {"record": "text", "text": "float", "float": "record"}[category]
    data = category_sample(other, size=16384, seed=5)
    codec = GraphCompressor(category, TRAINED_GRAPHS[category])
    assert codec.decompress(codec.compress(data, 1).data).data == data


def test_compress_is_deterministic():
    data = category_sample("record", size=32768, seed=9)
    codec = GraphCompressor("record", TRAINED_GRAPHS["record"])
    assert codec.compress(data, 1).data == codec.compress(data, 1).data


def test_counters_account_transform_and_entropy_work():
    data = category_sample("record", size=32768, seed=1)
    result = GraphCompressor("record", TRAINED_GRAPHS["record"]).compress(data, 1)
    c = result.counters
    assert c.bytes_in == len(data)
    assert c.bytes_out == len(result.data)
    # the tokenize root saw every input byte once
    assert c.transform_bytes >= len(data)
    # leaf zlib work was merged up (record graph leaves are all zlib)
    assert c.entropy_symbols > 0 or c.literals_emitted > 0


def test_decompress_counters_mirror_transform_bytes():
    data = category_sample("record", size=16384, seed=2)
    codec = GraphCompressor("record", TRAINED_GRAPHS["record"])
    blob = codec.compress(data, 1).data
    back = codec.decompress(blob)
    assert back.counters.transform_bytes >= len(data)


def test_max_output_bytes_guards_frames():
    data = category_sample("record", size=32768, seed=4)
    codec = GraphCompressor("record", TRAINED_GRAPHS["record"])
    blob = codec.compress(data, 1).data
    with pytest.raises((CorruptDataError, OutputLimitExceeded)):
        codec.decompress(blob, max_output_bytes=128)
    # a permissive limit still round-trips
    assert codec.decompress(blob, max_output_bytes=len(data) * 2).data == data


def test_concatenated_containers_decode_like_every_other_codec():
    """Multi-frame convention: cat(compress(a), compress(b)) decodes to a+b.

    This is what lets the chunked parallel engine emit standard graph
    streams -- jobs=N output is containers back to back.
    """
    codec = GraphCompressor("record", TRAINED_GRAPHS["record"])
    a = category_sample("record", size=8192, seed=1)
    b = category_sample("record", size=8192, seed=2)
    blob = codec.compress(a, 1).data + codec.compress(b, 1).data
    assert codec.decompress(blob).data == a + b


def test_chunked_parallel_graph_stream_roundtrips():
    from repro.parallel import compress_chunked

    data = category_sample("record", size=65536, seed=8)
    one = compress_chunked("graph:record", data, 1, chunk_size=16384, jobs=1)
    two = compress_chunked("graph:record", data, 1, chunk_size=16384, jobs=2)
    assert one.data == two.data, "graph chunked output differs across --jobs"
    assert get_codec("graph:record").decompress(one.data).data == data


def test_empty_payload_is_corruption():
    codec = GraphCompressor("record", TRAINED_GRAPHS["record"])
    with pytest.raises(CorruptDataError, match="empty"):
        codec.decompress(b"")


def test_graph_codec_resolves_through_registry_prefix():
    """``get_codec("graph:<name>")`` is how the rest of the repo reaches us."""
    codec = get_codec("graph:record")
    data = category_sample("record", size=16384, seed=6)
    blob = codec.compress(data, 1).data
    assert get_codec("graph:record").decompress(blob).data == data


def test_dynamic_registration_lifecycle():
    spec = {"kind": "leaf", "codec": "zstd", "level": 3}
    register_graph("tmp-test-graph", spec)
    try:
        assert "tmp-test-graph" in available_graphs()
        assert get_graph("tmp-test-graph") == spec
        codec = get_codec("graph:tmp-test-graph")
        assert codec.decompress(codec.compress(b"abc" * 100, 1).data).data == b"abc" * 100
    finally:
        unregister_graph("tmp-test-graph")
    assert "tmp-test-graph" not in available_graphs()


def test_unknown_graph_name_raises_cleanly():
    from repro.codecs.base import CodecError

    with pytest.raises(CodecError):
        get_codec("graph:not-a-real-graph")


def test_nested_graph_leaf_rejected():
    from repro.graphs.model import GraphSpecError, validate_spec

    with pytest.raises(GraphSpecError, match="nest"):
        validate_spec({"kind": "leaf", "codec": "graph:record", "level": 1})
