"""The transform node catalog: invertible byte-stream transforms.

Every transform is *total* (defined for any input bytes, including empty,
one byte, and lengths that do not divide the element width) and
*invertible* (``decode(encode(x)) == x`` exactly). Partial trailing
elements are carried as an uncompressed tail inside one of the output
streams, so alignment is never a precondition — it only affects how much
the transform helps.

Encoding never fails. Decoding consumes streams that may have been
corrupted in flight, so every structural inconsistency (lane lengths that
do not add up, varints overflowing their width, a high stream that does
not divide by the element size) raises
:class:`~repro.codecs.base.CorruptDataError` — the E001 decode-boundary
contract, which ``repro lint`` now enforces for this package too.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.codecs.base import CorruptDataError
from repro.codecs.varint import read_uvarint, write_uvarint
from repro.graphs.model import Spec

_UINT_DTYPES = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}


class TransformKind:
    """One entry of the node catalog.

    ``encode`` maps input bytes to ``fanout`` output streams; ``decode``
    inverts it. Both are pure functions of (node params, data).
    """

    name: str = ""

    def fanout(self, node: Spec) -> int:
        return 1

    def encode(self, node: Spec, data: bytes) -> List[bytes]:
        raise NotImplementedError

    def decode(self, node: Spec, streams: List[bytes]) -> bytes:
        raise NotImplementedError


TRANSFORMS: Dict[str, TransformKind] = {}


def _register(cls):
    TRANSFORMS[cls.name] = cls()
    return cls


def _split_body(data: bytes, width: int):
    """(aligned body, raw tail) split at the last complete element."""
    cut = (len(data) // width) * width
    return data[:cut], data[cut:]


@_register
class TransposeKind(TransformKind):
    """Byte-plane transpose over ``width``-byte elements.

    Row-major elements become column-major byte planes: plane 0 holds
    every element's byte 0, plane 1 every byte 1, ... For little-endian
    numeric data this groups the high-order (mostly-zero or slowly
    varying) bytes into long homogeneous runs — the column-transpose
    trick ORC and OpenZL both lean on.
    """

    name = "transpose"

    def encode(self, node: Spec, data: bytes) -> List[bytes]:
        width = int(node["width"])
        body, tail = _split_body(data, width)
        if not body:
            return [tail]
        planes = (
            np.frombuffer(body, dtype=np.uint8)
            .reshape(-1, width)
            .T.tobytes()
        )
        return [planes + tail]

    def decode(self, node: Spec, streams: List[bytes]) -> bytes:
        width = int(node["width"])
        data = streams[0]
        rows = len(data) // width
        cut = rows * width
        body, tail = data[:cut], data[cut:]
        if not body:
            return tail
        restored = (
            np.frombuffer(body, dtype=np.uint8)
            .reshape(width, -1)
            .T.tobytes()
        )
        return restored + tail


@_register
class DeltaKind(TransformKind):
    """Element-wise delta with wrap-around, little-endian unsigned.

    Monotone or slowly drifting sequences (timestamps, row ids, sorted
    keys) become streams of tiny residuals; composing with ``zigzag`` +
    ``varint`` then shrinks them physically.
    """

    name = "delta"

    def encode(self, node: Spec, data: bytes) -> List[bytes]:
        width = int(node["width"])
        body, tail = _split_body(data, width)
        if not body:
            return [tail]
        values = np.frombuffer(body, dtype=_UINT_DTYPES[width])
        out = np.empty_like(values)
        out[0] = values[0]
        # unsigned subtraction wraps mod 2^(8*width) -- exactly invertible
        np.subtract(values[1:], values[:-1], out=out[1:])
        return [out.tobytes() + tail]

    def decode(self, node: Spec, streams: List[bytes]) -> bytes:
        width = int(node["width"])
        body, tail = _split_body(streams[0], width)
        if not body:
            return tail
        deltas = np.frombuffer(body, dtype=_UINT_DTYPES[width])
        values = np.cumsum(deltas, dtype=deltas.dtype)
        return values.tobytes() + tail


@_register
class ZigzagKind(TransformKind):
    """Zigzag-map signed elements so small magnitudes get small codes.

    Interprets each aligned element as two's-complement signed; maps
    0, -1, 1, -2, ... to 0, 1, 2, 3, ... Size-preserving on its own —
    the payoff comes from a downstream ``varint`` or entropy leaf.
    """

    name = "zigzag"

    def encode(self, node: Spec, data: bytes) -> List[bytes]:
        width = int(node["width"])
        body, tail = _split_body(data, width)
        if not body:
            return [tail]
        bits = np.uint64(8 * width - 1)
        v = np.frombuffer(body, dtype=_UINT_DTYPES[width]).astype(np.uint64)
        sign = np.uint64(0) - (v >> bits)  # all-ones when the sign bit is set
        z = ((v << np.uint64(1)) ^ sign) & _mask(width)
        return [z.astype(_UINT_DTYPES[width]).tobytes() + tail]

    def decode(self, node: Spec, streams: List[bytes]) -> bytes:
        width = int(node["width"])
        body, tail = _split_body(streams[0], width)
        if not body:
            return tail
        z = np.frombuffer(body, dtype=_UINT_DTYPES[width]).astype(np.uint64)
        v = ((z >> np.uint64(1)) ^ (np.uint64(0) - (z & np.uint64(1)))) & _mask(
            width
        )
        return v.astype(_UINT_DTYPES[width]).tobytes() + tail


def _mask(width: int) -> np.uint64:
    if width == 8:
        return np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.uint64((1 << (8 * width)) - 1)


@_register
class VarintKind(TransformKind):
    """LEB128-recode aligned unsigned elements (via :mod:`codecs.varint`).

    The only size-changing value transform: mostly-small values (zigzagged
    deltas, sparse ids) shrink toward one byte each. The stream is
    self-framing: element count, then the varints, then the raw tail.
    """

    name = "varint"

    def encode(self, node: Spec, data: bytes) -> List[bytes]:
        width = int(node["width"])
        body, tail = _split_body(data, width)
        out = bytearray()
        count = len(body) // width
        write_uvarint(out, count)
        for value in np.frombuffer(body, dtype=_UINT_DTYPES[width]).tolist():
            write_uvarint(out, value)
        return [bytes(out) + tail]

    def decode(self, node: Spec, streams: List[bytes]) -> bytes:
        width = int(node["width"])
        data = streams[0]
        count, pos = read_uvarint(data, 0)
        if count > len(data):  # each varint takes at least one byte
            raise CorruptDataError(
                f"varint stream claims {count} elements in {len(data)} bytes"
            )
        limit = 1 << (8 * width)
        values = []
        for __ in range(count):
            value, pos = read_uvarint(data, pos)
            if value >= limit:
                raise CorruptDataError(
                    f"varint value {value} overflows width {width}"
                )
            values.append(value)
        body = np.asarray(values, dtype=_UINT_DTYPES[width]).tobytes()
        return body + data[pos:]


class _LaneCounter:
    """Token → lane assignment state machine, shared by encode and decode.

    Round-robin over ``lanes``; when a ``reset`` byte is configured the
    counter restarts after any token containing it (the row boundary).
    Record formats merge a row's last field and the next row's first
    field into one token (no delimiter crosses the row break), which
    would rotate a plain ``i % lanes`` assignment by one field per row;
    the reset re-anchors field *k* to lane *k* at every row, so lanes
    stay column-pure and the alignment self-heals after irregular rows.
    """

    def __init__(self, node: Spec):
        self._lanes = int(node["lanes"])
        reset = node.get("reset")
        self._reset = None if reset is None else bytes([int(reset)])
        self._index = 0

    def lane(self) -> int:
        return self._index % self._lanes

    def advance(self, token: bytes) -> None:
        if self._reset is not None and self._reset in token:
            self._index = 0
        else:
            self._index += 1


@_register
class TokenizeKind(TransformKind):
    """Structure-aware field split on a delimiter byte.

    ``data.split(delim)`` yields tokens; a lengths stream (varint count +
    varint token lengths) records how to stitch them back, and each token
    goes to the lane chosen by :class:`_LaneCounter`. With ``lanes``
    equal to the record's field count and ``reset`` set to the row
    delimiter, each lane collects one *column* of a record-structured
    payload — the field-split / struct-tokenize stage for
    ``corpus.records``-style data — so every lane's leaf sees a
    low-entropy, self-similar stream.
    """

    name = "tokenize"

    def fanout(self, node: Spec) -> int:
        return 1 + int(node["lanes"])

    def encode(self, node: Spec, data: bytes) -> List[bytes]:
        delim = bytes([int(node["delim"])])
        lanes = int(node["lanes"])
        tokens = data.split(delim)
        lengths = bytearray()
        write_uvarint(lengths, len(tokens))
        buckets = [bytearray() for __ in range(lanes)]
        counter = _LaneCounter(node)
        for token in tokens:
            write_uvarint(lengths, len(token))
            buckets[counter.lane()].extend(token)
            counter.advance(token)
        return [bytes(lengths)] + [bytes(b) for b in buckets]

    def decode(self, node: Spec, streams: List[bytes]) -> bytes:
        delim = bytes([int(node["delim"])])
        lengths, lane_streams = streams[0], streams[1:]
        count, pos = read_uvarint(lengths, 0)
        if count > len(lengths) + 1:  # each length takes >= 1 byte
            raise CorruptDataError(
                f"tokenize lengths stream claims {count} tokens "
                f"in {len(lengths)} bytes"
            )
        offsets = [0] * len(lane_streams)
        tokens: List[bytes] = []
        counter = _LaneCounter(node)
        for index in range(count):
            size, pos = read_uvarint(lengths, pos)
            # the lane for token i depends only on tokens < i, all already
            # reassembled, so replaying the encoder's counter is exact
            lane = counter.lane()
            stream = lane_streams[lane]
            start = offsets[lane]
            if start + size > len(stream):
                raise CorruptDataError(
                    f"tokenize lane {lane} exhausted: token {index} needs "
                    f"{size} bytes at offset {start} of {len(stream)}"
                )
            token = stream[start : start + size]
            offsets[lane] = start + size
            counter.advance(token)
            tokens.append(token)
        if pos != len(lengths):
            raise CorruptDataError("tokenize lengths stream has trailing bytes")
        for lane, (offset, stream) in enumerate(zip(offsets, lane_streams)):
            if offset != len(stream):
                raise CorruptDataError(
                    f"tokenize lane {lane} has {len(stream) - offset} "
                    "unconsumed bytes"
                )
        if not tokens:
            raise CorruptDataError("tokenize stream decodes to zero tokens")
        return delim.join(tokens)


@_register
class FloatSplitKind(TransformKind):
    """Per-element byte split: high bytes one way, low bytes the other.

    For little-endian float data the top ``hi`` bytes of each element
    carry sign and exponent (low entropy, compresses hard) while the low
    bytes carry mantissa noise (often best stored raw). Splitting them
    into separate edges lets the graph give each its own subtree — the
    float-decomposition stage for ``corpus.embeddings``.
    """

    name = "floatsplit"

    def fanout(self, node: Spec) -> int:
        return 2

    def encode(self, node: Spec, data: bytes) -> List[bytes]:
        width = int(node["width"])
        hi = int(node["hi"])
        body, tail = _split_body(data, width)
        if not body:
            return [b"", tail]
        grid = np.frombuffer(body, dtype=np.uint8).reshape(-1, width)
        high = grid[:, width - hi :].tobytes()
        low = grid[:, : width - hi].tobytes()
        return [high, low + tail]

    def decode(self, node: Spec, streams: List[bytes]) -> bytes:
        width = int(node["width"])
        hi = int(node["hi"])
        high, low_and_tail = streams
        if len(high) % hi:
            raise CorruptDataError(
                f"floatsplit high stream {len(high)} not divisible by hi={hi}"
            )
        count = len(high) // hi
        low_size = count * (width - hi)
        if len(low_and_tail) < low_size:
            raise CorruptDataError(
                f"floatsplit low stream {len(low_and_tail)} shorter than "
                f"{low_size} required"
            )
        low, tail = low_and_tail[:low_size], low_and_tail[low_size:]
        if not count:
            return tail
        grid = np.empty((count, width), dtype=np.uint8)
        grid[:, width - hi :] = np.frombuffer(high, dtype=np.uint8).reshape(
            count, hi
        )
        grid[:, : width - hi] = np.frombuffer(low, dtype=np.uint8).reshape(
            count, width - hi
        )
        return grid.tobytes() + tail


@_register
class HeadSplitKind(TransformKind):
    """Split at the first occurrence of a marker byte.

    The prefix — up to and including the marker — goes to the first
    child, the remainder to the second. When the marker is absent the
    whole input is the prefix. Decode is plain concatenation, so the
    transform is invertible by construction; its value is alignment: a
    variable-length textual header (``corpus.embeddings``' JSON preamble
    ends with a NUL) stops shifting the binary body, so a downstream
    ``transpose`` sees element-aligned data.
    """

    name = "headsplit"

    def fanout(self, node: Spec) -> int:
        return 2

    def encode(self, node: Spec, data: bytes) -> List[bytes]:
        marker = bytes([int(node["marker"])])
        index = data.find(marker)
        if index < 0:
            return [data, b""]
        return [data[: index + 1], data[index + 1 :]]

    def decode(self, node: Spec, streams: List[bytes]) -> bytes:
        head, body = streams
        marker = bytes([int(node["marker"])])
        inner = head.find(marker)
        if 0 <= inner < len(head) - 1:
            raise CorruptDataError(
                "headsplit head stream contains the marker before its end"
            )
        if head.find(marker) < 0 and body:
            raise CorruptDataError(
                "headsplit head stream lacks the marker but a body follows"
            )
        return head + body


@_register
class SliceKind(TransformKind):
    """Fixed-offset section split — a learned wire-format layout.

    Child *i* receives the next ``sizes[i]`` bytes, the final child the
    remainder. Payload categories with a constant binary layout (the ads
    request: header, dense float32 block, sparse int64 block) get each
    section routed to the subtree that suits it — raw LZ for the float
    tokens, transpose for the mostly-zero integers. Short inputs just
    leave the later sections empty; decode is concatenation plus shape
    checks.
    """

    name = "slice"

    def fanout(self, node: Spec) -> int:
        return len(node["sizes"]) + 1

    def encode(self, node: Spec, data: bytes) -> List[bytes]:
        sizes = [int(s) for s in node["sizes"]]
        streams: List[bytes] = []
        pos = 0
        for size in sizes:
            streams.append(data[pos : pos + size])
            pos += size
        streams.append(data[pos:])
        return streams

    def decode(self, node: Spec, streams: List[bytes]) -> bytes:
        sizes = [int(s) for s in node["sizes"]]
        exhausted = False
        for index, (size, stream) in enumerate(zip(sizes, streams)):
            if exhausted and stream:
                raise CorruptDataError(
                    f"slice section {index} is non-empty after a short section"
                )
            if len(stream) > size:
                raise CorruptDataError(
                    f"slice section {index} has {len(stream)} bytes, "
                    f"cap is {size}"
                )
            if len(stream) < size:
                exhausted = True
        if exhausted and streams[-1]:
            raise CorruptDataError(
                "slice remainder is non-empty after a short section"
            )
        return b"".join(streams)


def transform_for(kind: str) -> TransformKind:
    """Catalog lookup; raises for unknown kinds (validation runs first)."""
    return TRANSFORMS[kind]


def encode_transform(node: Spec, data: bytes) -> List[bytes]:
    return transform_for(str(node["kind"])).encode(node, data)


def decode_transform(node: Spec, streams: List[bytes]) -> bytes:
    return transform_for(str(node["kind"])).decode(node, streams)


Factory = Callable[[], TransformKind]
