"""``repro obs watch``: replay a recorded timeline as an ANSI view.

Reads the JSONL flight-recorder form written by ``repro slo --format
jsonl`` (kinds: ``run``, ``window``, ``alert``, ``end``) and renders a
window-by-window terminal timeline — burn-rate bars, colored alert
states, and transition callouts. Pure rendering: no simulation runs
here, so the same file always paints the same screen (modulo
``--no-color``).
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional

_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_STATE_COLORS = {
    "ok": "\x1b[32m",
    "warn": "\x1b[33m",
    "page": "\x1b[31m",
}
#: burn-rate bar: one cell per 0.5x of budget burn, capped
_BAR_CELLS = 16
_BAR_PER_CELL = 0.5


class WatchError(ValueError):
    """Raised when the input is not a recognizable timeline."""


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color and code else text


def _burn_bar(burn: Optional[float], color: bool) -> str:
    if burn is None:
        return " " * _BAR_CELLS
    cells = min(_BAR_CELLS, int(burn / _BAR_PER_CELL))
    if burn > 0 and cells == 0:
        cells = 1
    bar = "#" * cells + "." * (_BAR_CELLS - cells)
    if burn >= 3.0:
        code = _STATE_COLORS["page"]
    elif burn >= 1.0:
        code = _STATE_COLORS["warn"]
    else:
        code = _STATE_COLORS["ok"]
    return _paint(bar, code, color)


def _states_cell(states: dict, color: bool) -> str:
    hot = sorted(
        (name, state) for name, state in states.items() if state != "ok"
    )
    if not hot:
        return _paint("ok", _STATE_COLORS["ok"], color)
    return " ".join(
        _paint(f"{name}={state}", _STATE_COLORS.get(state, ""), color)
        for name, state in hot
    )


def _worst_burn(burns: dict) -> Optional[float]:
    values = [b for b in burns.values() if b is not None]
    return max(values) if values else None


def render_watch(lines: Iterable[str], color: bool = True) -> str:
    """Render JSONL timeline lines into the terminal view."""
    out: List[str] = []
    saw_any = False
    for raw in lines:
        raw = raw.strip()
        if not raw:
            continue
        try:
            row = json.loads(raw)
        except json.JSONDecodeError as error:
            raise WatchError(f"not a JSONL timeline: {error}") from error
        kind = row.get("kind")
        saw_any = True
        if kind == "run":
            title = (
                f"obs watch -- {row.get('plane', '?')} "
                f"scenario '{row.get('scenario', '?')}', "
                f"seed {row.get('seed', '?')}, "
                f"window {row.get('window_seconds', '?')} s"
            )
            out.append(_paint(title, _BOLD, color))
            out.append(
                f"{'win':>4s} {'span (s)':>15s} {'offer':>6s} "
                f"{'shed':>5s} {'p99 ms':>8s} "
                f"{'burn ' + '-' * (_BAR_CELLS - 5):{_BAR_CELLS}s} states"
            )
        elif kind == "window":
            span = f"[{row['start']:6.2f},{row['end']:6.2f})"
            p99 = row.get("p99_ms")
            p99_cell = "-".rjust(8) if p99 is None else f"{p99:8.2f}"
            unserved = (
                row.get("shed", 0)
                + row.get("throttled", 0)
                + row.get("expired", 0)
            )
            out.append(
                f"{row['index']:4d} {span:>15s} {row.get('offered', 0):6d} "
                f"{unserved:5d} {p99_cell} "
                f"{_burn_bar(_worst_burn(row.get('burns', {})), color)} "
                f"{_states_cell(row.get('states', {}), color)}"
            )
        elif kind == "alert":
            code = _STATE_COLORS.get(row.get("to", ""), "")
            line = (
                f"     ! {row.get('at', 0):.3f} s  {row.get('slo', '?')}: "
                f"{row.get('from', '?')} -> {row.get('to', '?')} "
                f"({row.get('reason', '')})"
            )
            out.append(_paint(line, code or _DIM, color))
        elif kind == "end":
            final = " ".join(
                f"{name}={state}"
                for name, state in sorted(
                    (row.get("final_states") or {}).items()
                )
            )
            out.append("")
            out.append(
                f"final states: {final or 'ok'}; "
                f"page seconds {row.get('total_page_seconds', 0.0):.3f}; "
                f"worst {row.get('worst_state', 'ok')}"
            )
        # unknown kinds are skipped: the format may grow fields/rows
    if not saw_any:
        raise WatchError("empty input: no timeline rows found")
    return "\n".join(out)


def watch_file(path: str, color: bool = True) -> str:
    with open(path) as handle:
        return render_watch(handle, color=color)
