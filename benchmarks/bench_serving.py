"""Serving gateway: overload behavior with and without the ladder.

The serving plane's claim (Section IV's requirements, operationalized):
under sustained overload, stepping down a cost-ranked degradation ladder
keeps tail latency bounded and sheds nothing, at a measured ratio cost.
This benchmark records the baseline run shape — goodput, p99 latency,
shed rate, and ratio lost to degradation at a fixed seed and rate — for
the overload scenario with the ladder on and off, asserting the
determinism and the degrade-before-shed ordering that CI certifies.

The pytest-benchmark kernel is the gateway hot path itself: one burst of
requests through admission, the weighted-fair queue, rung selection, and
compression dispatch.
"""

from __future__ import annotations

import trajectory

from repro.analysis import format_table
from repro.serving import (
    CompressionGateway,
    ServingRequest,
    build_ladder,
    run_simulation,
)

_SEED = 7
_SCALE = 0.5


def _report_row(report):
    return [
        "on" if report.degradation_enabled else "off",
        report.arrivals,
        report.served,
        report.shed,
        report.degraded,
        f"{report.latency.p50(source='all') * 1e3:.1f}",
        f"{report.latency.p99(source='all') * 1e3:.1f}",
        f"{report.goodput_bytes_per_second / 1e6:.3f}",
        f"{report.ratio_lost_to_degradation() * 100:.1f}%",
    ]


def test_serving_overload_baseline(benchmark, figure_output):
    ladder_on = run_simulation("overload", seed=_SEED, scale=_SCALE)
    ladder_off = run_simulation(
        "overload", seed=_SEED, scale=_SCALE, degradation=False
    )

    # the properties the serving plane exists to provide
    assert ladder_on.degraded > 0
    assert ladder_on.shed == 0
    assert ladder_on.latency.p99(source="all") < ladder_off.latency.p99(
        source="all"
    )
    if ladder_on.first_shed_at is not None:
        assert ladder_on.first_degraded_at is not None
        assert ladder_on.first_degraded_at < ladder_on.first_shed_at

    # fold the headline numbers into the perf trajectory (same names
    # `python benchmarks/trajectory.py` regenerates for the CI baseline;
    # the run is deterministic so re-recording is byte-stable)
    trajectory.record(
        "serving.overload.p99_ms",
        ladder_on.latency.p99(source="all") * 1e3,
        "ms",
        higher_is_better=False,
    )
    trajectory.record(
        "serving.overload.goodput_mbps",
        ladder_on.goodput_bytes_per_second / 1e6,
        "MB/s",
    )
    trajectory.record(
        "serving.overload.ratio_lost_pct",
        ladder_on.ratio_lost_to_degradation() * 100,
        "%",
        higher_is_better=False,
    )
    trajectory.record(
        "serving.overload.served", float(ladder_on.served), "requests"
    )

    figure_output(
        "serving_overload_baseline",
        format_table(
            [
                "ladder",
                "arrivals",
                "served",
                "shed",
                "degraded",
                "p50 ms",
                "p99 ms",
                "goodput MB/s",
                "ratio lost",
            ],
            [_report_row(ladder_on), _report_row(ladder_off)],
            title=(
                f"Serving overload baseline (seed {_SEED}, scale {_SCALE}, "
                f"degradation on vs off)"
            ),
        ),
    )

    # kernel: one burst through admission, fair queue, and dispatch
    payloads = [
        f"serving kernel payload {i:04d} compressible body ".encode() * 24
        for i in range(50)
    ]
    ladder = build_ladder(payloads[:4], algorithms=("zstd", "lz4"), levels=(1, 3))

    def burst() -> int:
        gateway = CompressionGateway(ladder, capacity=64)
        for i, payload in enumerate(payloads):
            gateway.submit(
                ServingRequest(
                    request_id=i,
                    tenant=f"tenant-{i % 3}",
                    payload=payload,
                    arrival=0.0,
                )
            )
        served = 0
        while gateway.queue.depth():
            served += len(gateway.serve_batch(0.0, 8))
        return served

    assert burst() == len(payloads)
    benchmark(burst)
