"""LZ4 compressor: level tables, framing, and the public codec class."""

from __future__ import annotations

from typing import Dict, Optional

from repro.codecs.base import (
    Compressor,
    CorruptDataError,
    StageCounters,
    register_codec,
)
from repro.codecs.checksum import xxh32
from repro.codecs.lz4 import block as lz4block
from repro.codecs.matchfinders import MatchFinderParams, finder_for_strategy

_MAGIC = b"RLZ4"
_MAX_BLOCK = 1 << 22  # 4 MiB, matching the largest real LZ4 frame block size
_UNCOMPRESSED_FLAG = 0x80000000

#: Level table. Levels 1-2 are the fast single-hash path (LZ4 default and a
#: denser hash table); 3-12 are HC-style hash-chain searches of increasing
#: depth, with lazy evaluation from level 6 up.
_LEVEL_PARAMS: Dict[int, MatchFinderParams] = {}
for _level in range(1, 13):
    if _level <= 2:
        _LEVEL_PARAMS[_level] = MatchFinderParams(
            window_log=16,
            hash_log=12 if _level == 1 else 15,
            min_match=lz4block.MIN_MATCH,
            max_offset=lz4block.MAX_OFFSET,
            strategy="fast",
            acceleration=1,
        )
    else:
        _LEVEL_PARAMS[_level] = MatchFinderParams(
            window_log=16,
            hash_log=15,
            search_depth=min(96, 1 << (_level - 2)),
            min_match=lz4block.MIN_MATCH,
            max_offset=lz4block.MAX_OFFSET,
            target_length=64 if _level < 10 else 1 << 12,
            lazy_steps=0 if _level < 6 else (1 if _level < 10 else 2),
            strategy="greedy" if _level < 6 else ("lazy" if _level < 10 else "lazy2"),
        )


class LZ4Compressor(Compressor):
    """LZ4-style codec with levels 1..12 (1-2 fast, 3-12 HC-style)."""

    name = "lz4"
    min_level = 1
    max_level = 12
    default_level = 1

    def params_for_level(self, level: int) -> MatchFinderParams:
        """Match-finder parameters the given level resolves to."""
        return _LEVEL_PARAMS[level]

    def _compress(
        self,
        data: bytes,
        level: int,
        dictionary: Optional[bytes],
        counters: StageCounters,
    ) -> bytes:
        params = _LEVEL_PARAMS[level]
        finder = finder_for_strategy(params.strategy)
        out = bytearray(_MAGIC)
        out.extend(len(data).to_bytes(8, "little"))
        for block_start in range(0, len(data), _MAX_BLOCK):
            chunk = data[block_start : block_start + _MAX_BLOCK]
            tokens = finder.parse(chunk, 0, params, counters)
            payload = lz4block.encode_block(chunk, 0, tokens, counters)
            if len(payload) >= len(chunk):
                # Incompressible block: store raw, as the real frame does.
                out.extend((len(chunk) | _UNCOMPRESSED_FLAG).to_bytes(4, "little"))
                out.extend(chunk)
            else:
                out.extend(len(payload).to_bytes(4, "little"))
                out.extend(payload)
        out.extend((0).to_bytes(4, "little"))  # end mark
        out.extend(xxh32(data).to_bytes(4, "little"))
        return bytes(out)

    def _decompress(
        self,
        payload: bytes,
        dictionary: Optional[bytes],
        counters: StageCounters,
    ) -> bytes:
        if not payload:
            raise CorruptDataError("bad LZ4 frame magic")
        out = bytearray()
        pos = 0
        # Concatenated frames decode to concatenated contents, matching the
        # real LZ4 frame format (and the parallel chunked engine's output).
        while pos < len(payload):
            pos = self._decode_frame(payload, pos, counters, out)
        return bytes(out)

    def _decode_frame(
        self, payload: bytes, pos: int, counters: StageCounters, out: bytearray
    ) -> int:
        """Decode one frame at ``pos`` into ``out``; returns the end offset."""
        if payload[pos : pos + 4] != _MAGIC:
            raise CorruptDataError("bad LZ4 frame magic")
        if len(payload) - pos < 12:
            raise CorruptDataError("truncated LZ4 frame header")
        content_size = int.from_bytes(payload[pos + 4 : pos + 12], "little")
        frame_start = len(out)
        self._check_output_budget(frame_start + content_size)
        pos += 12
        while True:
            self._check_output_budget(len(out))
            if pos + 4 > len(payload):
                raise CorruptDataError("truncated LZ4 frame")
            block_size = int.from_bytes(payload[pos : pos + 4], "little")
            pos += 4
            if block_size == 0:
                break
            raw = bool(block_size & _UNCOMPRESSED_FLAG)
            block_size &= ~_UNCOMPRESSED_FLAG
            if pos + block_size > len(payload):
                raise CorruptDataError("block exceeds LZ4 frame")
            body = payload[pos : pos + block_size]
            pos += block_size
            if raw:
                self._check_output_budget(len(out) + len(body))
                out.extend(body)
                counters.literal_bytes_copied += len(body)
            else:
                out.extend(lz4block.decode_block(body, counters))
        if pos + 4 > len(payload):
            raise CorruptDataError("missing LZ4 content checksum")
        stored = int.from_bytes(payload[pos : pos + 4], "little")
        if stored != xxh32(bytes(out[frame_start:])):
            raise CorruptDataError("LZ4 content checksum mismatch")
        if len(out) - frame_start != content_size:
            raise CorruptDataError("LZ4 content size mismatch")
        return pos + 4


register_codec("lz4", LZ4Compressor)
