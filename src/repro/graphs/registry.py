"""The graph registry: names → specs, and the ``graph:`` codec hook.

Two layers back a name lookup:

- graphs registered at runtime (``register_graph``) — search candidates,
  CLI-trained graphs loaded from files;
- the *trained* table (:mod:`repro.graphs.trained`) — per-category graphs
  pinned as module-level literals, which is what makes them available in
  freshly spawned pool workers: ``get_codec("graph:record")`` works in any
  process without a registration side channel, because resolution falls
  through to the literal table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graphs.codec import GraphCompressor
from repro.graphs.model import Spec, validate_spec

_DYNAMIC: Dict[str, Spec] = {}


def register_graph(name: str, spec: Spec) -> None:
    """Register (or replace) a named graph for this process."""
    if not name or ":" in name:
        raise ValueError(f"invalid graph name {name!r}")
    validate_spec(spec)
    _DYNAMIC[name] = spec


def unregister_graph(name: str) -> None:
    """Drop a runtime registration (trained graphs cannot be dropped)."""
    _DYNAMIC.pop(name, None)


def get_graph(name: str) -> Spec:
    """The spec registered under ``name``; raises ``KeyError`` if absent."""
    if name in _DYNAMIC:
        return _DYNAMIC[name]
    from repro.graphs.trained import TRAINED_GRAPHS

    return TRAINED_GRAPHS[name]


def available_graphs() -> List[str]:
    """All resolvable graph names, sorted."""
    from repro.graphs.trained import TRAINED_GRAPHS

    return sorted(set(_DYNAMIC) | set(TRAINED_GRAPHS))


def resolve_graph_codec(name: str) -> Optional[GraphCompressor]:
    """Codec for ``graph:<name>`` lookups; ``None`` when unknown.

    Called by :func:`repro.codecs.base.get_codec`, which turns ``None``
    into its usual ``CodecError``.
    """
    try:
        spec = get_graph(name)
    except KeyError:
        return None
    return GraphCompressor(name, spec)
