"""Bounded per-tenant request queues with weighted-fair dequeue.

The gateway's traffic plane is multi-tenant by construction: the paper's
fleet is "many services sharing one compression substrate", and a shared
queue with FIFO order would let one bursty tenant starve everyone else.
:class:`FairQueue` implements the classic virtual-time weighted-fair
queueing discipline over per-tenant FIFO lanes:

- each tenant owns a bounded deque (``capacity`` requests); an offer to a
  full lane is rejected, which the admission layer reports as a shed;
- every enqueued request is stamped with a *finish tag*
  ``max(V, last_tag[tenant]) + size / weight`` where ``V`` is the queue's
  virtual time; dequeue always takes the head-of-line request with the
  smallest tag (ties broken by tenant name, then sequence number, so the
  order is a pure function of the offered traffic);
- requests whose deadline has passed by dequeue time are dropped at the
  head, never served late-and-useless (deadline-based drops).

Everything is deterministic: no wall clock, no randomness — time is
whatever the caller (ultimately :class:`~repro.resilience.clock.SimClock`
or the simulator's event clock) passes in.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ServingRequest:
    """One compression request offered to the gateway."""

    request_id: int
    tenant: str
    payload: bytes
    #: simulated arrival time, seconds
    arrival: float
    #: absolute deadline on the simulated clock; ``inf`` = none
    deadline: float = math.inf

    @property
    def size(self) -> int:
        return len(self.payload)


@dataclass
class QueueStats:
    """Accounting for one queue's lifetime."""

    enqueued: int = 0
    dequeued: int = 0
    rejected_full: int = 0
    expired: int = 0


@dataclass(order=True)
class _Entry:
    """Heap-ordered queue entry; comparison key is (tag, tenant, seq)."""

    tag: float
    tenant: str
    seq: int
    request: ServingRequest = field(compare=False)


class FairQueue:
    """Weighted-fair queue over bounded per-tenant lanes."""

    def __init__(
        self,
        capacity: int = 64,
        weights: Optional[Dict[str, float]] = None,
        default_weight: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("per-tenant capacity must be at least 1")
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        self.capacity = capacity
        self.default_weight = default_weight
        self.weights = dict(weights or {})
        for tenant, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"tenant {tenant!r} weight must be positive")
        self.stats = QueueStats()
        self._lanes: Dict[str, Deque[_Entry]] = {}
        self._last_tag: Dict[str, float] = {}
        self._virtual = 0.0
        self._seq = 0

    # -- sizing -------------------------------------------------------------

    def depth(self, tenant: Optional[str] = None) -> int:
        """Queued requests, total or for one tenant."""
        if tenant is not None:
            lane = self._lanes.get(tenant)
            return len(lane) if lane else 0
        return sum(len(lane) for lane in self._lanes.values())

    def __len__(self) -> int:
        return self.depth()

    def tenants(self) -> List[str]:
        return sorted(t for t, lane in self._lanes.items() if lane)

    # -- enqueue ------------------------------------------------------------

    def weight_of(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def offer(self, request: ServingRequest) -> bool:
        """Enqueue; False means the tenant's lane is full (caller sheds)."""
        lane = self._lanes.setdefault(request.tenant, deque())
        if len(lane) >= self.capacity:
            self.stats.rejected_full += 1
            return False
        weight = self.weight_of(request.tenant)
        start = max(self._virtual, self._last_tag.get(request.tenant, 0.0))
        # cost is bytes / weight: a heavy payload occupies a tenant's share
        # for proportionally longer, exactly as WFQ serves bit-by-bit
        tag = start + max(1, request.size) / weight
        self._last_tag[request.tenant] = tag
        lane.append(_Entry(tag, request.tenant, self._seq, request))
        self._seq += 1
        self.stats.enqueued += 1
        return True

    # -- dequeue ------------------------------------------------------------

    def poll(
        self, now: float
    ) -> Tuple[Optional[ServingRequest], List[ServingRequest]]:
        """Next request by fair order, plus any deadline-expired drops.

        Expired head-of-line requests (``deadline < now``) are removed and
        returned in the second slot so the gateway can account for them;
        they are never handed out for service.
        """
        expired: List[ServingRequest] = []
        while True:
            best: Optional[_Entry] = None
            for tenant in sorted(self._lanes):
                lane = self._lanes[tenant]
                if not lane:
                    continue
                head = lane[0]
                if best is None or head < best:
                    best = head
            if best is None:
                return None, expired
            self._lanes[best.tenant].popleft()
            if best.request.deadline < now:
                self.stats.expired += 1
                expired.append(best.request)
                continue
            self._virtual = max(self._virtual, best.tag)
            self.stats.dequeued += 1
            return best.request, expired
