"""LEB128 unsigned varints used by the frame and block headers."""

from __future__ import annotations

from typing import Tuple

from repro.codecs.base import CorruptDataError


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` as a little-endian base-128 varint."""
    if value < 0:
        raise ValueError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    """Read a varint at ``pos``; returns ``(value, next_pos)``."""
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptDataError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise CorruptDataError("varint too long")
