"""CompOpt optimizer tests: constraints, ranking, search strategies."""

import pytest

from repro.core import (
    CompEngine,
    CompOpt,
    CompressionConfig,
    CostModel,
    CostParameters,
    MaxBlockDecodeLatency,
    MinCompressionSpeed,
    MinRatio,
)
from repro.core.config import config_grid
from repro.core.constraints import MinDecompressionSpeed
from repro.core.search import EvolutionarySearch, ExhaustiveSearch, RandomSearch
from repro.corpus import generate_records


@pytest.fixture(scope="module")
def engine():
    return CompEngine([generate_records(8192, seed=s) for s in range(2)])


@pytest.fixture(scope="module")
def cost_model():
    return CostModel(
        CostParameters.from_price_book(beta=1e-6, retention_days=30.0)
    )


@pytest.fixture(scope="module")
def grid():
    return config_grid(["zstd", "lz4", "zlib"], levels=[1, 3, 6, 9])


class TestOptimize:
    def test_ranked_ascending_by_cost(self, engine, cost_model, grid):
        result = CompOpt(engine, cost_model).optimize(grid)
        costs = [r.total_cost for r in result.ranked]
        assert costs == sorted(costs)
        assert len(result.ranked) == len(grid)

    def test_best_is_feasible_minimum(self, engine, cost_model, grid):
        opt = CompOpt(engine, cost_model, [MinCompressionSpeed(50e6)])
        result = opt.optimize(grid)
        assert result.best is not None
        assert result.best.feasible
        feasible_costs = [r.total_cost for r in result.ranked if r.feasible]
        assert result.best.total_cost == min(feasible_costs)

    def test_unsatisfiable_requirements_give_no_best(self, engine, cost_model, grid):
        opt = CompOpt(engine, cost_model, [MinCompressionSpeed(1e15)])
        result = opt.optimize(grid)
        assert result.best is None
        assert result.best_any is not None

    def test_constraint_filters_slow_configs(self, engine, cost_model, grid):
        opt = CompOpt(engine, cost_model, [MinCompressionSpeed(200e6)])
        result = opt.optimize(grid)
        for ranked in result.ranked:
            if ranked.feasible:
                assert ranked.metrics.compression_speed >= 200e6

    def test_normalized_costs_relative_to_worst(self, engine, cost_model, grid):
        result = CompOpt(engine, cost_model).optimize(grid)
        normalized = dict(result.normalized_costs())
        assert max(normalized.values()) == pytest.approx(1.0)
        assert min(normalized.values()) < 1.0

    def test_multiple_requirements_all_apply(self, engine, cost_model, grid):
        opt = CompOpt(
            engine,
            cost_model,
            [MinCompressionSpeed(50e6), MinRatio(3.0), MinDecompressionSpeed(100e6)],
        )
        result = opt.optimize(grid)
        for ranked in result.ranked:
            if ranked.feasible:
                assert ranked.metrics.ratio >= 3.0

    def test_block_latency_requirement(self, engine, cost_model):
        grid = [
            CompressionConfig("zstd", 1, 1024),
            CompressionConfig("zstd", 1, 65536),
        ]
        # Find a threshold between the two block sizes' decode latencies.
        small = engine.measure(grid[0])
        large = engine.measure(grid[1])
        threshold = (
            small.decode_seconds_per_block + large.decode_seconds_per_block
        ) / 2
        opt = CompOpt(engine, cost_model, [MaxBlockDecodeLatency(threshold)])
        result = opt.optimize(grid)
        feasibility = {r.config.block_size: r.feasible for r in result.ranked}
        assert feasibility[1024] and not feasibility[65536]

    def test_requirement_descriptions(self):
        assert "200" in MinCompressionSpeed(200e6).describe()
        assert "ms" in MaxBlockDecodeLatency(8e-5).describe()
        assert "ratio" in MinRatio(2.0).describe()


class TestSearchStrategies:
    def test_exhaustive_evaluates_all(self, engine, cost_model, grid):
        opt = CompOpt(engine, cost_model, strategy=ExhaustiveSearch())
        assert len(opt.optimize(grid).ranked) == len(grid)

    def test_random_respects_budget(self, engine, cost_model, grid):
        opt = CompOpt(engine, cost_model, strategy=RandomSearch(budget=4, seed=1))
        assert len(opt.optimize(grid).ranked) == 4

    def test_random_budget_larger_than_grid(self, engine, cost_model, grid):
        opt = CompOpt(engine, cost_model, strategy=RandomSearch(budget=999))
        assert len(opt.optimize(grid).ranked) == len(grid)

    def test_random_invalid_budget(self):
        with pytest.raises(ValueError):
            RandomSearch(budget=0)

    def test_evolutionary_finds_near_best(self, engine, cost_model, grid):
        exhaustive = CompOpt(engine, cost_model).optimize(grid)
        evolutionary = CompOpt(
            engine,
            cost_model,
            strategy=EvolutionarySearch(generations=5, population=4, seed=2),
        ).optimize(grid)
        best_total = exhaustive.best_any.total_cost
        found_total = evolutionary.best_any.total_cost
        assert found_total <= best_total * 1.25

    def test_evolutionary_evaluates_fewer_than_grid_on_big_spaces(
        self, engine, cost_model
    ):
        big_grid = config_grid(["zstd"], levels=range(-5, 23))
        opt = CompOpt(
            engine,
            cost_model,
            strategy=EvolutionarySearch(generations=2, population=4, seed=3),
        )
        result = opt.optimize(big_grid)
        assert len(result.ranked) < len(big_grid)
