"""Shared LZ77 token model.

All three codecs parse input into the same intermediate representation the
paper describes for production LZ compressors: *literals* (bytes with no
match) and *sequences* (literal length, match length, offset). The codecs
differ only in which match finder produces the tokens and how the entropy
stage serializes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Token:
    """One LZ77 sequence: a run of literals followed by a back-reference.

    A ``match_length`` of zero is only valid for the trailing token of a
    block and denotes "remaining literals, no match".
    """

    literal_length: int
    match_length: int
    offset: int

    def __post_init__(self) -> None:
        if self.literal_length < 0:
            raise ValueError("literal_length must be non-negative")
        if self.match_length < 0:
            raise ValueError("match_length must be non-negative")
        if self.match_length > 0 and self.offset <= 0:
            raise ValueError("matches require a positive offset")


def tokens_cover(tokens: List[Token]) -> int:
    """Total number of input bytes represented by ``tokens``."""
    return sum(t.literal_length + t.match_length for t in tokens)


def match_length(data: bytes, back: int, front: int, limit: int) -> int:
    """Length of the common run ``data[back:]`` vs ``data[front:]``, capped.

    ``back < front`` is required. Both regions exist in ``data`` during
    parsing, so plain chunked equality is sound even for overlapping
    (self-referential) matches: byte equality on the original buffer is
    exactly the periodic-extension condition the decoder's sequential copy
    reproduces. Chunk sizes step down 256 -> 16 -> 1, which matters a great
    deal for pure-Python throughput on long matches.
    """
    length = 0
    while length + 256 <= limit and (
        data[back + length : back + length + 256]
        == data[front + length : front + length + 256]
    ):
        length += 256
    while length + 16 <= limit and (
        data[back + length : back + length + 16]
        == data[front + length : front + length + 16]
    ):
        length += 16
    while length < limit and data[back + length] == data[front + length]:
        length += 1
    return length


def copy_match(out: bytearray, offset: int, length: int) -> None:
    """Append ``length`` bytes copied from ``offset`` back, in place.

    Handles the overlapping case (offset < length) with run replication, the
    semantics every LZ decoder must implement for RLE-style matches.
    """
    src = len(out) - offset
    if src < 0:
        raise ValueError("match offset reaches before start of output")
    if offset >= length:
        out.extend(out[src : src + length])
        return
    chunk = bytes(out[src:])
    while len(chunk) < length:
        chunk += chunk
    out.extend(chunk[:length])


def reconstruct(tokens: List[Token], literals: bytes) -> bytes:
    """Rebuild the original bytes from tokens plus the literal byte stream.

    Used by tests to validate parses independently of any codec format.
    """
    out = bytearray()
    lit_pos = 0
    for token in tokens:
        out.extend(literals[lit_pos : lit_pos + token.literal_length])
        lit_pos += token.literal_length
        if token.match_length:
            start = len(out) - token.offset
            if start < 0:
                raise ValueError("offset reaches before start of output")
            for i in range(token.match_length):
                out.append(out[start + i])
    return bytes(out)


def validate_parse(tokens: List[Token], data: bytes, history_length: int = 0) -> None:
    """Assert that a parse is a faithful description of ``data``.

    ``history_length`` is the size of the dictionary prefix the parser was
    allowed to reference. Raises ``ValueError`` on the first inconsistency.
    """
    position = history_length
    full = data  # data includes the history prefix at the front
    for index, token in enumerate(tokens):
        position += token.literal_length
        if token.match_length:
            if token.match_length and token.offset > position:
                raise ValueError(f"token {index}: offset {token.offset} exceeds position {position}")
            for i in range(token.match_length):
                if full[position + i] != full[position - token.offset + i]:
                    raise ValueError(f"token {index}: match mismatch at byte {i}")
            position += token.match_length
    if position != len(full):
        raise ValueError(
            f"parse covers {position - history_length} bytes, "
            f"input has {len(full) - history_length}"
        )
