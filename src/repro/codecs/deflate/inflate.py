"""DEFLATE decoder (inflate), RFC 1951."""

from __future__ import annotations

from typing import List, Tuple

from repro.codecs.base import CorruptDataError, StageCounters
from repro.codecs.entropy.bitio import BitReader
from repro.codecs.entropy.huffman import HuffmanDecoder
from repro.codecs.lz77 import copy_match
from repro.codecs.deflate import tables as dtables


def _read_dynamic_tables(reader: BitReader) -> Tuple[HuffmanDecoder, HuffmanDecoder]:
    hlit = reader.read(5) + 257
    hdist = reader.read(5) + 1
    hclen = reader.read(4) + 4
    cl_lengths = [0] * 19
    for order_index in range(hclen):
        cl_lengths[dtables.CODE_LENGTH_ORDER[order_index]] = reader.read(3)
    cl_decoder = HuffmanDecoder(cl_lengths)

    lengths: List[int] = []
    while len(lengths) < hlit + hdist:
        symbol = cl_decoder.decode_symbol(reader)
        if symbol < 16:
            lengths.append(symbol)
        elif symbol == 16:
            if not lengths:
                raise CorruptDataError("repeat code with no previous length")
            repeat = reader.read(2) + 3
            lengths.extend([lengths[-1]] * repeat)
        elif symbol == 17:
            repeat = reader.read(3) + 3
            lengths.extend([0] * repeat)
        else:
            repeat = reader.read(7) + 11
            lengths.extend([0] * repeat)
    if len(lengths) != hlit + hdist:
        raise CorruptDataError("code length RLE overflows the table")
    lit_lengths = lengths[:hlit] + [0] * (286 - hlit)
    dist_lengths = lengths[hlit:] + [0] * (30 - hdist)
    return HuffmanDecoder(lit_lengths), HuffmanDecoder(dist_lengths)


def decode_stream(
    payload: bytes, counters: StageCounters, budget_check=None, start: int = 0
) -> Tuple[bytes, int]:
    """Inflate one complete DEFLATE stream starting at byte ``start``.

    Returns ``(data, end)`` where ``end`` is the byte offset just past the
    stream's final block (rounded up to the next byte boundary) -- the
    position of the container trailer, which is how the zlib/gzip decoders
    walk concatenated members of a multi-frame stream.

    ``budget_check``, when given, is called with the output size after each
    stored block or back-reference copy; it raises to abort oversized
    (bomb-like) expansions early.
    """
    reader = BitReader(payload, start=start)
    out = bytearray()
    fixed_lit: HuffmanDecoder = None  # built lazily
    fixed_dist: HuffmanDecoder = None
    try:
        while True:
            is_final = reader.read(1)
            btype = reader.read(2)
            if btype == 0:
                reader.align_to_byte()
                size_bytes = reader.read_bytes(2)
                nsize_bytes = reader.read_bytes(2)
                size = int.from_bytes(size_bytes, "little")
                if size ^ 0xFFFF != int.from_bytes(nsize_bytes, "little"):
                    raise CorruptDataError("stored block LEN/NLEN mismatch")
                out.extend(reader.read_bytes(size))
                counters.literal_bytes_copied += size
                if budget_check is not None:
                    budget_check(len(out))
            elif btype in (1, 2):
                if btype == 1:
                    if fixed_lit is None:
                        fixed_lit = HuffmanDecoder(dtables.fixed_literal_lengths())
                        fixed_dist = HuffmanDecoder(dtables.fixed_distance_lengths())
                    lit_decoder, dist_decoder = fixed_lit, fixed_dist
                else:
                    lit_decoder, dist_decoder = _read_dynamic_tables(reader)
                while True:
                    symbol = lit_decoder.decode_symbol(reader)
                    counters.entropy_symbols_decoded += 1
                    if symbol < 256:
                        out.append(symbol)
                        counters.literal_bytes_copied += 1
                    elif symbol == dtables.END_OF_BLOCK:
                        break
                    else:
                        if symbol > 285:
                            raise CorruptDataError(f"invalid length code {symbol}")
                        base, bits = dtables.LENGTH_TABLE[symbol - 257]
                        length = base + (reader.read(bits) if bits else 0)
                        dcode = dist_decoder.decode_symbol(reader)
                        if dcode > 29:
                            raise CorruptDataError(f"invalid distance code {dcode}")
                        dbase, dbits = dtables.DISTANCE_TABLE[dcode]
                        distance = dbase + (reader.read(dbits) if dbits else 0)
                        copy_match(out, distance, length)
                        counters.match_bytes_copied += length
                        counters.sequences_decoded += 1
                        if budget_check is not None:
                            budget_check(len(out))
            else:
                raise CorruptDataError("reserved block type 3")
            if is_final:
                reader.align_to_byte()
                return bytes(out), reader.byte_position
    except (EOFError, ValueError) as exc:
        raise CorruptDataError(f"bad DEFLATE stream: {exc}") from None
