"""Entropy-coding primitives shared by the codecs.

The paper attributes the compression-ratio / decompression-speed trade-off to
the entropy stage (Section II-B): LZ4 skips entropy coding entirely, DEFLATE
uses Huffman codes, and Zstandard uses Huffman for literals plus Finite State
Entropy (tANS) for sequence codes. All three schemes are implemented here.
"""

from repro.codecs.entropy.bitio import BitReader, BitWriter
from repro.codecs.entropy.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    build_code_lengths,
)
from repro.codecs.entropy.fse import FSEDecoder, FSEEncoder, normalize_counts

__all__ = [
    "BitReader",
    "BitWriter",
    "HuffmanEncoder",
    "HuffmanDecoder",
    "build_code_lengths",
    "FSEEncoder",
    "FSEDecoder",
    "normalize_counts",
]
