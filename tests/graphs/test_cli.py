"""``repro graph`` CLI: train/compress/decompress/describe, all deterministic."""

import json

import pytest

from repro.cli import main
from repro.graphs.samples import category_sample


@pytest.fixture()
def record_file(tmp_path):
    path = tmp_path / "records.bin"
    path.write_bytes(category_sample("record", size=65536, seed=7))
    return path


class TestCompressDecompress:
    def test_roundtrip_named_graph(self, tmp_path, record_file, capsys):
        blob = tmp_path / "out.rgz"
        back = tmp_path / "back.bin"
        assert main(
            ["graph", "compress", str(record_file), str(blob), "--graph", "record"]
        ) == 0
        assert "ratio" in capsys.readouterr().out
        assert main(["graph", "decompress", str(blob), str(back)]) == 0
        assert back.read_bytes() == record_file.read_bytes()

    def test_compress_is_byte_identical_across_runs(self, tmp_path, record_file):
        first = tmp_path / "a.rgz"
        second = tmp_path / "b.rgz"
        for out in (first, second):
            assert main(
                ["graph", "compress", str(record_file), str(out), "--graph", "record"]
            ) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_spec_file_roundtrip(self, tmp_path, record_file):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps({"kind": "delta", "width": 1,
                        "child": {"kind": "leaf", "codec": "zlib", "level": 6}},
                       sort_keys=True)
        )
        blob = tmp_path / "out.rgz"
        back = tmp_path / "back.bin"
        assert main(
            ["graph", "compress", str(record_file), str(blob), "--spec", str(spec_path)]
        ) == 0
        assert main(["graph", "decompress", str(blob), str(back)]) == 0
        assert back.read_bytes() == record_file.read_bytes()

    def test_decompress_corrupt_stream_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.rgz"
        bad.write_bytes(b"not a graph stream")
        out = tmp_path / "out.bin"
        assert main(["graph", "decompress", str(bad), str(out)]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_graph_name_fails(self, tmp_path, record_file):
        with pytest.raises(SystemExit):
            main(
                ["graph", "compress", str(record_file), str(tmp_path / "o"),
                 "--graph", "nope"]
            )


class TestDescribeAndList:
    def test_list_shows_trained_graphs(self, capsys):
        assert main(["graph", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("record", "text", "float"):
            assert f"graph:{name}" in out

    def test_describe_named(self, capsys):
        assert main(["graph", "describe", "--graph", "float"]) == 0
        out = capsys.readouterr().out
        assert "headsplit" in out

    def test_describe_stream_is_deterministic(self, tmp_path, record_file, capsys):
        blob = tmp_path / "out.rgz"
        assert main(
            ["graph", "compress", str(record_file), str(blob), "--graph", "record"]
        ) == 0
        capsys.readouterr()
        assert main(["graph", "describe", "--stream", str(blob)]) == 0
        first = capsys.readouterr().out
        assert main(["graph", "describe", "--stream", str(blob)]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "frames:" in first and "tokenize" in first


class TestTrain:
    def test_train_writes_valid_spec(self, tmp_path, capsys):
        out = tmp_path / "spec.json"
        assert main(
            ["graph", "train", "--category", "record", "--seed", "0",
             "--generations", "1", "--population", "2",
             "--count", "1", "--size", "8192", "--out", str(out)]
        ) == 0
        stdout = capsys.readouterr().out
        assert "winner:" in stdout
        from repro.graphs.model import parse_spec, validate_spec

        validate_spec(parse_spec(out.read_bytes()))

    def test_train_output_is_deterministic(self, capsys):
        args = ["graph", "train", "--category", "record", "--seed", "3",
                "--generations", "1", "--population", "2",
                "--count", "1", "--size", "8192"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert first == capsys.readouterr().out
