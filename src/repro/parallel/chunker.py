"""Chunk planning for the parallel engine.

The engine splits an input into fixed-size chunks, each compressed as one
independent frame. 128 KiB is the default: it matches the zstd block size
(so chunking costs at most one block's worth of match-window reach) while
keeping enough chunks in flight to fill a worker pool. Smaller chunks
parallelize better but pay the per-call setup overhead the paper measures
for small blocks (Section IV-E) once per chunk, and lose cross-chunk
redundancy -- the ratio/latency trade-off documented in docs/parallel.md.
"""

from __future__ import annotations

from typing import List, Tuple

#: default chunk size: one zstd max-block, the production sweet spot
DEFAULT_CHUNK_SIZE = 128 * 1024

#: refuse chunks so small that framing overhead dominates the payload
MIN_CHUNK_SIZE = 64


def plan_chunks(total_bytes: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> List[Tuple[int, int]]:
    """Split ``total_bytes`` into ``(start, stop)`` spans of ``chunk_size``.

    Deterministic: the same (size, chunk_size) always yields the same plan,
    which is what makes ``--jobs 1`` and ``--jobs N`` output byte-identical.
    An empty input maps to a single empty span so the engine still emits
    exactly one (empty) frame, matching what a serial ``compress(b"")``
    call produces.
    """
    if chunk_size < MIN_CHUNK_SIZE:
        raise ValueError(
            f"chunk_size must be >= {MIN_CHUNK_SIZE} bytes, got {chunk_size}"
        )
    if total_bytes < 0:
        raise ValueError("total_bytes must be non-negative")
    if total_bytes == 0:
        return [(0, 0)]
    return [
        (start, min(start + chunk_size, total_bytes))
        for start in range(0, total_bytes, chunk_size)
    ]


def chunk_count(total_bytes: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
    """Number of chunks :func:`plan_chunks` would produce."""
    return len(plan_chunks(total_bytes, chunk_size))
