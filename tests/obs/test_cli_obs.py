"""The ``repro obs`` subcommand: workloads run and snapshots render."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    obs.disable()
    yield
    obs.disable()
    obs.reset()


def test_obs_kvstore_prometheus(capsys):
    assert main(["obs", "--workload", "kvstore", "--format", "prometheus"]) == 0
    out = capsys.readouterr().out
    # per-(algorithm, direction, level, stage) counters
    assert 'repro_codec_stage_ops_total{algorithm="zstd"' in out
    assert 'direction="compress"' in out and 'stage="match_finding"' in out
    # block-decode latency histogram (Fig. 13)
    assert "repro_kvstore_block_decode_seconds_bucket" in out
    assert "repro_kvstore_block_decode_seconds_count" in out
    assert 'repro_kvstore_block_cache_total{result="hit"}' in out


def test_obs_rpc_jsonl(capsys):
    assert main(["obs", "--workload", "rpc", "--format", "jsonl"]) == 0
    out = capsys.readouterr().out
    entries = [json.loads(line) for line in out.strip().splitlines()]
    names = {entry["metric"] for entry in entries}
    assert "repro_codec_calls_total" in names
    assert "repro_rpc_message_seconds" in names
    spans = [e for e in entries if e["metric"] == "repro_span_seconds"]
    assert any(
        e["labels"]["path"] == "workload.rpc;rpc.send" for e in spans
    )


def test_obs_table_and_file_output(capsys, tmp_path):
    out_path = tmp_path / "snapshot.txt"
    assert main([
        "obs", "--workload", "cache", "--format", "table",
        "--output", str(out_path),
    ]) == 0
    text = out_path.read_text()
    assert "repro_cache_requests_total" in text
    assert "wrote table snapshot" in capsys.readouterr().out


def test_obs_leaves_telemetry_disabled(capsys):
    assert not obs.is_enabled()
    main(["obs", "--workload", "rpc", "--format", "table"])
    assert not obs.is_enabled()
