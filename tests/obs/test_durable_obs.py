"""Telemetry for the durable write path: WAL counters, recovery spans."""

from __future__ import annotations

from repro.obs.instrument import (
    KVSTORE_RECOVERY_SECONDS,
    TORN_TAILS,
    WAL_APPENDS,
    WAL_BYTES,
    WAL_REPLAYED,
)
from repro.obs.spans import flame_counts
from repro.services.kvstore import KVStore, SimStorage

_KWARGS = dict(memtable_bytes=1 << 11, level0_table_limit=2)


class TestWalCounters:
    def test_appends_counted_with_bytes(self, fresh_obs):
        store = KVStore.open(SimStorage(seed=1), **_KWARGS)
        store.put(b"a", b"1")
        store.write_batch([(b"b", b"2"), (b"c", b"3")])
        appends = fresh_obs.get(WAL_APPENDS)
        assert appends.value() == 2  # a batch is one group append
        wal_bytes = fresh_obs.get(WAL_BYTES)
        assert wal_bytes.value(direction="append") > 0
        replayed = fresh_obs.get(WAL_REPLAYED)
        assert replayed.value(direction="append") == 2

    def test_replay_and_recovery_recorded(self, fresh_obs):
        storage = SimStorage(seed=1)
        store = KVStore.open(storage, **_KWARGS)
        for i in range(10):
            store.put(f"k{i}".encode(), b"payload " * 4)
        KVStore.open(storage, **_KWARGS)
        replayed = fresh_obs.get(WAL_REPLAYED)
        assert replayed.value(direction="replay") == 10
        assert fresh_obs.get(WAL_BYTES).value(direction="replay") > 0
        # every durable open is a recovery: the fresh open plus the reopen
        recovery = fresh_obs.get(KVSTORE_RECOVERY_SECONDS)
        assert recovery.count() == 2
        assert recovery.max() > 0

    def test_torn_tail_counted(self, fresh_obs):
        storage = SimStorage(seed=2)
        store = KVStore.open(storage, **_KWARGS)
        store.put(b"acked", b"synced value")
        segment = storage.list("wal-")[-1]
        storage.append(segment, b"\xfe" * 30)  # in-flight, never synced
        storage.crash()
        KVStore.open(storage, **_KWARGS)
        torn = fresh_obs.get(TORN_TAILS)
        assert torn.value(segment=segment) == 1


class TestDurableSpans:
    def test_flush_and_recover_spans_emitted(self, fresh_obs):
        storage = SimStorage(seed=1)
        store = KVStore.open(storage, **_KWARGS)
        for i in range(200):
            store.put(f"key:{i:04d}".encode(), b"span payload " * 4)
        store.flush()
        KVStore.open(storage, **_KWARGS)
        paths = flame_counts(fresh_obs)
        assert any(p.endswith("kvstore.flush") for p in paths)
        assert any("kvstore.recover" in p for p in paths)
        # the seeded fill compacts at least once under these knobs
        assert store.stats.compactions > 0
        assert any("kvstore.compact" in p for p in paths)
