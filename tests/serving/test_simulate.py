"""Discrete-event simulation: determinism and the degrade-before-shed claim."""

import pytest

from repro.serving.simulate import (
    SCENARIOS,
    ServingReport,
    format_scorecard,
    run_simulation,
)

_SMOKE_SCALE = 0.1


class TestDeterminism:
    def test_scorecard_byte_identical_per_seed(self):
        a = run_simulation("baseline", seed=7, scale=_SMOKE_SCALE)
        b = run_simulation("baseline", seed=7, scale=_SMOKE_SCALE)
        assert format_scorecard(a) == format_scorecard(b)

    def test_seed_changes_the_run(self):
        a = run_simulation("baseline", seed=7, scale=_SMOKE_SCALE)
        b = run_simulation("baseline", seed=8, scale=_SMOKE_SCALE)
        assert format_scorecard(a) != format_scorecard(b)

    def test_jobs_do_not_change_the_scorecard(self):
        serial = run_simulation("baseline", seed=7, scale=_SMOKE_SCALE, jobs=1)
        pooled = run_simulation("baseline", seed=7, scale=_SMOKE_SCALE, jobs=2)
        assert format_scorecard(serial) == format_scorecard(pooled)


class TestScenarios:
    def test_known_scenarios(self):
        assert set(SCENARIOS) == {"baseline", "overload", "burst"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_simulation("meltdown", seed=7)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            run_simulation("baseline", scale=0.0)

    def test_baseline_serves_everything_admitted(self):
        report = run_simulation("baseline", seed=7, scale=0.25)
        assert report.arrivals > 0
        assert report.shed == 0
        assert report.served + report.expired == report.admitted
        assert report.on_time + report.tardy == report.served
        assert report.makespan_seconds > 0

    def test_overload_degrades_before_shedding(self):
        """The acceptance property: the ladder engages -- nonzero degraded
        count and a lower p99 than the same run with degradation disabled
        -- before any request is shed."""
        ladder_on = run_simulation("overload", seed=7, scale=0.25)
        ladder_off = run_simulation(
            "overload", seed=7, scale=0.25, degradation=False
        )
        assert ladder_on.degraded > 0
        assert ladder_on.first_degraded_at is not None
        if ladder_on.first_shed_at is not None:
            assert ladder_on.first_degraded_at < ladder_on.first_shed_at
        assert ladder_on.shed == 0
        assert ladder_on.latency.p99(source="all") < ladder_off.latency.p99(
            source="all"
        )
        assert ladder_off.degraded == 0
        # the ladder pays for its latency win in ratio, and says so
        assert ladder_on.ratio_lost_to_degradation() > 0
        assert ladder_off.ratio_lost_to_degradation() == 0


class TestReportMath:
    def _report(self, **overrides):
        fields = dict(
            scenario="x",
            seed=1,
            degradation_enabled=True,
            ladder_labels=["zstd-6", "lz4-1"],
            thresholds=[0.3],
            rung0_ratio=4.0,
            arrivals=10,
            served=8,
            bytes_in_served=8000,
            bytes_out=2500,
            bytes_in_degraded=4000,
            bytes_out_degraded=1500,
            bytes_on_time=6000,
            makespan_seconds=2.0,
        )
        fields.update(overrides)
        return ServingReport(**fields)

    def test_goodput(self):
        assert self._report().goodput_bytes_per_second == pytest.approx(3000.0)
        assert self._report(makespan_seconds=0.0).goodput_bytes_per_second == 0.0

    def test_achieved_ratio(self):
        assert self._report().achieved_ratio == pytest.approx(8000 / 2500)

    def test_shed_rate(self):
        assert self._report(shed=2).shed_rate() == pytest.approx(0.2)
        assert self._report(arrivals=0).shed_rate() == 0.0

    def test_ratio_lost_counterfactual(self):
        report = self._report()
        # counterfactual: degraded input re-served at the rung-0 ratio
        counterfactual_out = 2500 - 1500 + 4000 / 4.0
        expected = 1.0 - (8000 / 2500) / (8000 / counterfactual_out)
        assert report.ratio_lost_to_degradation() == pytest.approx(expected)
        assert report.ratio_lost_to_degradation() > 0

    def test_ratio_lost_zero_without_degradation(self):
        report = self._report(bytes_in_degraded=0, bytes_out_degraded=0)
        assert report.ratio_lost_to_degradation() == 0.0

    def test_scorecard_mentions_the_essentials(self):
        text = format_scorecard(self._report(shed=1, degraded=3))
        assert "scenario 'x', seed 1" in text
        assert "zstd-6 -> lz4-1" in text
        assert "shed rate 10.0%" in text
        assert "lost to degradation" in text
