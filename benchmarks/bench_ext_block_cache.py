"""Extension: block cache and bloom filters on the KVSTORE1 read path.

Quantifies the two classic LSM read-path savings around block compression:
bloom filters answer absent-key reads with zero decompression, and the
decompressed-block cache removes repeat-decode cost for hot blocks --
both shift the block-size trade-off of Fig. 13.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.corpus import generate_kv_records
from repro.services import KVStore


def _run(block_cache_bytes, bloom_bits, records, read_rounds=3):
    store = KVStore(
        block_cache_bytes=block_cache_bytes,
        bloom_bits_per_key=bloom_bits,
        memtable_bytes=1 << 14,
        block_size=8192,
    )
    for key, value in records:
        store.put(key, value)
    store.flush()
    hot_keys = [k for k, __ in records[::17]]
    for __ in range(read_rounds):
        for key in hot_keys:
            store.get(key)
    # Absent keys *inside* the key range, so without blooms they cost a
    # block decode each.
    for i in range(200):
        store.get(b"svc7/shard%03d/meta/absent%06d" % (i % 64, i))
    return store


@pytest.fixture(scope="module")
def stores():
    records = generate_kv_records(1200, seed=230)
    return {
        "plain": _run(None, 0, records),
        "bloom": _run(None, 10, records),
        "bloom+cache": _run(1 << 22, 10, records),
    }


def test_ext_block_cache(benchmark, stores, figure_output):
    rows = []
    for label, store in stores.items():
        rows.append(
            [
                label,
                store.stats.blocks_decompressed,
                store.bloom_skips,
                store.block_cache_hits,
                f"{store.stats.mean_read_decode_seconds * 1e6:.2f}",
            ]
        )
    figure_output(
        "ext_block_cache",
        format_table(
            ["mode", "blocks decoded", "bloom skips", "cache hits", "mean decode us"],
            rows,
            title="Extension: KVSTORE1 read path with bloom filters + block cache",
        ),
    )
    plain, bloom, cached = stores["plain"], stores["bloom"], stores["bloom+cache"]
    # Blooms eliminate decodes for absent keys.
    assert bloom.stats.blocks_decompressed < plain.stats.blocks_decompressed
    assert bloom.bloom_skips > 0
    # The block cache eliminates repeat decodes for hot keys.
    assert cached.stats.blocks_decompressed < bloom.stats.blocks_decompressed
    assert cached.block_cache_hits > 0

    records = generate_kv_records(300, seed=231)
    benchmark(lambda: _run(1 << 20, 10, records, read_rounds=1))
