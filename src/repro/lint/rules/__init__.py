"""Rule base class and the rule registry.

Rules are small AST visitors grouped into families by contract:

- **D (determinism)** -- the byte-identical-scorecard contract:
  no wall-clock reads, no process-salted or unseeded randomness, no
  nondeterministic iteration order, canonical JSON on export paths
  (:mod:`repro.lint.rules.determinism`);
- **E (exception contracts)** -- codec decode boundaries convert
  low-level decode explosions into :class:`CorruptDataError`
  (:mod:`repro.lint.rules.contracts`);
- **O (obs contracts)** -- instrumentation is zero-cost when disabled:
  every ``record_*`` hook call sits behind an enabled/recorder guard
  (:mod:`repro.lint.rules.obs`).

Each rule declares an id, a severity, and a one-line rationale (the
``repro lint --list-rules`` catalog); ``check`` yields findings over a
parsed :class:`~repro.lint.engine.FileContext`. Registration happens at
import via the :func:`register` decorator, mirroring the codec registry
idiom in :mod:`repro.codecs.base`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Type

from repro.lint.finding import ERROR, Finding


class Rule:
    """One named, self-contained contract check."""

    #: registry key, e.g. ``"D001"``
    id: str = "X000"
    #: short human label for the catalog
    title: str = ""
    severity: str = ERROR
    #: why this contract exists (one paragraph, shown by --list-rules)
    rationale: str = ""

    def is_exempt(self, ctx) -> bool:
        """Whole-file exemption (e.g. the clock-injection module itself)."""
        return False

    def check(self, ctx) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx, node, message: str) -> Finding:
        """Build a finding anchored at ``node`` in ``ctx``'s file."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = ctx.lines[line - 1] if line <= len(ctx.lines) else ""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            line_text=text,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add ``cls`` to the registry under its id."""
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, sorted by id."""
    _load()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rules(ids: Iterable[str]) -> List[Rule]:
    """Instantiate the named rules; unknown ids raise ValueError."""
    _load()
    out: List[Rule] = []
    for rule_id in sorted(set(ids)):
        if rule_id not in _REGISTRY:
            raise ValueError(
                f"unknown rule {rule_id!r}; available: {sorted(_REGISTRY)}"
            )
        out.append(_REGISTRY[rule_id]())
    return out


def _load() -> None:
    """Import the rule modules (idempotent; they self-register)."""
    from repro.lint.rules import contracts, determinism, obs  # noqa: F401
