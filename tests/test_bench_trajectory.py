"""The perf trajectory: persistence, the diff gate, and its CLI.

Acceptance-critical: injecting a 2x slowdown into a tracked latency
metric must flip ``has_regressions`` and make ``repro bench-diff`` exit
nonzero; the committed ``BENCH_trajectory.json`` must load and carry at
least the three deterministic benchmark families.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.trajectory import (
    DEFAULT_MAX_REGRESSION,
    TrajectoryEntry,
    compare_trajectories,
    format_diff,
    has_regressions,
    load_trajectory,
    record_entry,
    save_trajectory,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_BASELINE = os.path.join(_REPO_ROOT, "BENCH_trajectory.json")


def _entries(**values):
    return {
        name: TrajectoryEntry(
            name=name, value=value, unit="MB/s", higher_is_better=True
        )
        for name, value in values.items()
    }


class TestPersistence:
    def test_roundtrip_and_update(self, tmp_path):
        path = str(tmp_path / "traj.json")
        record_entry(path, TrajectoryEntry("a.speed", 100.0, "MB/s", True))
        record_entry(
            path, TrajectoryEntry("a.p99", 5.0, "ms", False, tolerance=0.3)
        )
        record_entry(path, TrajectoryEntry("a.speed", 120.0, "MB/s", True))
        entries = load_trajectory(path)
        assert entries["a.speed"].value == 120.0  # updated in place
        assert entries["a.p99"].tolerance == 0.3
        assert entries["a.p99"].higher_is_better is False

    def test_file_is_diff_clean(self, tmp_path):
        path = str(tmp_path / "traj.json")
        entries = _entries(b=2.0, a=1.0)
        save_trajectory(path, entries)
        first = open(path).read()
        save_trajectory(path, dict(reversed(list(entries.items()))))
        assert open(path).read() == first  # insertion order cannot leak
        payload = json.loads(first)
        assert list(payload["entries"]) == ["a", "b"]
        assert first.endswith("\n")

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99, "entries": {}}')
        with pytest.raises(ValueError):
            load_trajectory(str(path))

    def test_committed_baseline_loads(self):
        entries = load_trajectory(_BASELINE)
        assert len(entries) >= 3
        families = {name.split(".")[0] for name in entries}
        assert {"serving", "parallel", "codec"} <= families


class TestCompare:
    def test_within_tolerance_is_ok(self):
        rows = compare_trajectories(
            _entries(m=100.0), _entries(m=95.0), max_regression=0.10
        )
        assert [r.status for r in rows] == ["ok"]
        assert not has_regressions(rows)

    def test_injected_2x_slowdown_fails(self):
        baseline = {
            "p99": TrajectoryEntry("p99", 10.0, "ms", higher_is_better=False)
        }
        current = {
            "p99": TrajectoryEntry("p99", 20.0, "ms", higher_is_better=False)
        }
        rows = compare_trajectories(baseline, current)
        assert rows[0].status == "regressed"
        assert rows[0].change == pytest.approx(-1.0)  # 100% worse
        assert has_regressions(rows)
        assert "FAIL" in format_diff(rows)

    def test_improvement_direction_respects_polarity(self):
        # higher-is-better metric doubling is an improvement, not a fail
        rows = compare_trajectories(_entries(speed=100.0), _entries(speed=200.0))
        assert rows[0].status == "improved"
        assert not has_regressions(rows)

    def test_per_entry_tolerance_overrides_default(self):
        baseline = {
            "noisy": TrajectoryEntry("noisy", 1.0, "x", False, tolerance=0.5)
        }
        current = {"noisy": TrajectoryEntry("noisy", 1.4, "x", False)}
        rows = compare_trajectories(baseline, current, max_regression=0.10)
        assert rows[0].status == "ok"  # 40% worse but tolerance is 50%

    def test_missing_metric_fails_new_is_informational(self):
        rows = compare_trajectories(
            _entries(kept=1.0, dropped=1.0), _entries(kept=1.0, added=1.0)
        )
        by_name = {r.name: r.status for r in rows}
        assert by_name == {"kept": "ok", "dropped": "missing", "added": "new"}
        assert has_regressions(rows)

    def test_format_diff_deterministic(self):
        rows = compare_trajectories(_entries(a=1.0, b=2.0), _entries(a=1.0, b=2.0))
        assert format_diff(rows) == format_diff(rows)
        assert "all tracked metrics within tolerance" in format_diff(rows)


class TestBenchDiffCLI:
    def _write(self, tmp_path, name, entries):
        path = str(tmp_path / name)
        save_trajectory(path, entries)
        return path

    def test_identical_files_pass(self, tmp_path, capsys):
        path = self._write(tmp_path, "base.json", _entries(m=100.0))
        assert main(["bench-diff", path, path]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_slowdown_exits_nonzero(self, tmp_path, capsys):
        baseline = self._write(
            tmp_path,
            "base.json",
            {"p99": TrajectoryEntry("p99", 10.0, "ms", False)},
        )
        current = self._write(
            tmp_path,
            "cur.json",
            {"p99": TrajectoryEntry("p99", 20.0, "ms", False)},
        )
        assert main(["bench-diff", baseline, current]) == 1
        assert "regressed" in capsys.readouterr().out

    def test_max_regression_flag_loosens_gate(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", _entries(m=100.0))
        current = self._write(tmp_path, "cur.json", _entries(m=80.0))
        assert main(["bench-diff", baseline, current]) == 1
        assert main(
            ["bench-diff", baseline, current, "--max-regression", "0.25"]
        ) == 0

    def test_unreadable_file_exits_2(self, tmp_path, capsys):
        path = self._write(tmp_path, "base.json", _entries(m=1.0))
        assert main(["bench-diff", path, str(tmp_path / "absent.json")]) == 2
        assert "bench-diff:" in capsys.readouterr().err

    def test_default_tolerance_matches_library(self):
        assert DEFAULT_MAX_REGRESSION == pytest.approx(0.10)
