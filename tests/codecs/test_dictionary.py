"""Dictionary training tests."""

import pytest

from repro.codecs import ZstdCompressor, train_dictionary
from repro.codecs.zstd.dictionary import CompressionDictionary


def _typed_samples(count=100):
    return [
        b'{"type":"user","id":%d,"country":"US","flags":["a","b"],"score":%d}'
        % (i, i * 13 % 100)
        for i in range(count)
    ]


class TestTrainDictionary:
    def test_empty_samples_give_empty_dictionary(self):
        assert len(train_dictionary([])) == 0

    def test_respects_max_size(self):
        dictionary = train_dictionary(_typed_samples(), max_size=1024)
        assert len(dictionary) <= 1024

    def test_captures_common_substrings(self):
        dictionary = train_dictionary(_typed_samples(), max_size=2048)
        assert b'"country":"US"' in dictionary.content

    def test_deterministic(self):
        samples = _typed_samples()
        assert (
            train_dictionary(samples, 2048).content
            == train_dictionary(samples, 2048).content
        )

    def test_dict_id_depends_on_content(self):
        d1 = train_dictionary(_typed_samples(), 1024)
        d2 = train_dictionary([b"totally different content " * 30], 1024)
        assert d1.dict_id != d2.dict_id

    def test_unique_content_yields_small_dictionary(self):
        import random

        rng = random.Random(5)
        samples = [
            bytes(rng.getrandbits(8) for _ in range(120)) for _ in range(30)
        ]
        dictionary = train_dictionary(samples, max_size=4096)
        # Nothing repeats across random samples, so little is worth keeping.
        assert len(dictionary) < 4096


class TestDictionaryEffectiveness:
    def test_ratio_improvement_on_small_typed_items(self):
        """The Fig. 10/11 headline: dictionaries beat plain compression on
        small items at every level."""
        zstd = ZstdCompressor()
        samples = _typed_samples(200)
        dictionary = train_dictionary(samples[:150], max_size=8192)
        test_items = samples[150:]
        for level in (1, 3, 6, 11):
            plain = sum(len(zstd.compress(i, level).data) for i in test_items)
            dicted = sum(
                len(zstd.compress(i, level, dictionary=dictionary.content).data)
                for i in test_items
            )
            assert dicted < plain, f"level {level}"

    def test_roundtrip_through_trained_dictionary(self):
        zstd = ZstdCompressor()
        samples = _typed_samples(80)
        dictionary = train_dictionary(samples, max_size=4096)
        for item in samples[:10]:
            blob = zstd.compress(item, 3, dictionary=dictionary.content)
            assert (
                zstd.decompress(blob.data, dictionary=dictionary.content).data
                == item
            )

    def test_compression_dictionary_len(self):
        d = CompressionDictionary(b"abc")
        assert len(d) == 3
