"""Quickstart: compress data, measure the three metrics, and let CompOpt
pick the cheapest configuration for a simple service.

Run:  python examples/quickstart.py
"""

from repro import (
    CompEngine,
    CompOpt,
    CostModel,
    CostParameters,
    MinCompressionSpeed,
    get_codec,
)
from repro.core.config import config_grid
from repro.corpus import generate_records
from repro.perfmodel import DEFAULT_MACHINE


def main() -> None:
    # --- 1. The codecs ----------------------------------------------------
    data = generate_records(32768, seed=1)
    for name in ("zstd", "lz4", "zlib"):
        codec = get_codec(name)
        result = codec.compress(data, codec.default_level)
        restored = codec.decompress(result.data)
        assert restored.data == data
        speed = DEFAULT_MACHINE.compress_speed(name, result.counters) / 1e6
        decode = DEFAULT_MACHINE.decompress_speed(name, restored.counters) / 1e6
        print(
            f"{name:5s} level {codec.default_level:2d}: "
            f"ratio {result.ratio:5.2f}  comp {speed:6.0f} MB/s  "
            f"decomp {decode:6.0f} MB/s"
        )

    # --- 2. CompOpt: find the cheapest configuration ----------------------
    # A service that stores compressed records for 30 days and must keep
    # compression above 100 MB/s.
    engine = CompEngine([generate_records(16384, seed=s) for s in range(3)])
    cost_model = CostModel(
        CostParameters.from_price_book(beta=1e-6, retention_days=30.0)
    )
    optimizer = CompOpt(engine, cost_model, [MinCompressionSpeed(100e6)])
    result = optimizer.optimize(config_grid(["zstd", "lz4", "zlib"], levels=range(1, 10)))

    print("\nCompOpt ranking (top 5):")
    for ranked in result.ranked[:5]:
        marker = "*" if ranked is result.best else " "
        print(
            f" {marker} {ranked.config.label():10s} "
            f"ratio {ranked.metrics.ratio:5.2f}  "
            f"${ranked.total_cost:,.2f}"
            f"{'' if ranked.feasible else '  (infeasible)'}"
        )
    best = result.best
    print(f"\nbest feasible configuration: {best.config.label()}")


if __name__ == "__main__":
    main()
