"""Fig. 11: CACHE2 dictionary-vs-plain speed/ratio curves (levels 1/3/6/11).

Same shape as Fig. 10 on the smaller social-graph items, where plain
compression struggles even more and the dictionary gain is larger.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.corpus import CACHE2_TYPES, generate_cache_items

from bench_fig10_cache1_dict import LEVELS, dictionary_sweep


@pytest.fixture(scope="module")
def curves():
    return dictionary_sweep(CACHE2_TYPES, seed=110)


def test_fig11_cache2_dict(benchmark, curves, figure_output):
    rows = [
        [
            f"level {level}",
            "dict" if use_dict else "plain",
            f"{ratio:.2f}",
            f"{speed:.0f}",
        ]
        for (level, use_dict), (ratio, speed) in sorted(curves.items())
    ]
    figure_output(
        "fig11_cache2_dict",
        format_table(
            ["level", "mode", "ratio", "comp MB/s"],
            rows,
            title="Fig. 11: CACHE2 ratio/speed with and without dictionaries",
        ),
    )
    for level in LEVELS:
        assert curves[(level, True)][0] > 1.15 * curves[(level, False)][0], level

    items = generate_cache_items(CACHE2_TYPES, 50, seed=111)
    from repro.codecs import train_dictionary

    payloads = [p for __, p in items]
    benchmark(lambda: train_dictionary(payloads, 4096))
